"""Compile-time cost of the allocators themselves.

The paper argues its approach is practical inside a JIT (unlike the
integer-programming allocators of Section 7).  This bench times each
allocator over the same prepared module so the RPG/CPG overhead is
visible next to the baselines.  No figure corresponds to this; it backs
the Section 7 discussion and DESIGN.md's complexity notes.

Run as a script to emit a machine-readable report::

    PYTHONPATH=src python benchmarks/bench_allocator_speed.py \
        --bench jess --model 24 --repeats 5 --out BENCH_allocator_speed.json

The report carries each allocator's best wall time plus the allocation
*fingerprint* (moves eliminated, spill instructions, cycle estimate) so
a speedup can never silently come from changed results.
``baseline_full_s`` is the pre-bitset time of the ``full`` allocator on
jess/24 measured on this machine before the dense-index/bitmask kernels
landed; ``speedup_full`` is relative to it.

Each allocator entry also records ``rounds`` (the worst-case Figure-8
iteration count over the module) and ``phases`` — a per-phase
wall-clock breakdown from :mod:`repro.profiling` — so spill-round cost
is attributable: under ``--spill-pressure N`` (an N-register
``make_machine`` squeeze that forces multi-round allocations) the
``reanalyze`` phase shows what the incremental spill-round path costs
versus the round-0 ``analyze`` phase.
"""

import argparse
import json
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import ALLOCATORS, prepared_module

from repro.config import runtime_knobs
from repro.pipeline import allocate_module, prepare_module
from repro.profiling import profiled
from repro.regalloc import AllocationOptions
from repro.service.schema import dataflow_backend_fields
from repro.target.presets import make_machine
from repro.workloads import make_benchmark

#: jess/24 ``full`` wall time before the bitset dataflow kernels (best
#: of 3 on the reference machine; see DESIGN.md "Bitset kernels").
BASELINE_FULL_S = 1.113

TIMED = [
    "chaitin",
    "priority",
    "briggs",
    "iterated",
    "optimistic",
    "callcost",
    "only-coalescing",
    "full",
]


def fingerprint(result) -> dict:
    """Result digest proving a timing change is not a behavior change."""
    stats = result.stats
    return {
        "moves_eliminated": stats.moves_eliminated,
        "spill_instructions": stats.spill_loads + stats.spill_stores,
        "spilled_webs": stats.spilled_webs,
        "cycles": result.cycles.total,
    }


#: Passes accumulated into the profiled phase breakdown.  Phase times
#: feed *ratio* gates (``check_perf_regression.py --dataflow``), so
#: summing several passes trades absolute meaning for stability.
PROFILE_PASSES = 3


def time_allocator(prepared, machine, name: str, repeats: int,
                   jobs: int) -> dict:
    allocator = ALLOCATORS[name]()
    options = AllocationOptions(jobs=jobs)
    # One unprofiled warm-up absorbs lazy imports and cold caches; the
    # next runs are phase-profiled, and the timed loop below runs
    # unprofiled so phase bookkeeping never taints `best_s`.
    allocate_module(prepared, machine, allocator, options)
    with profiled() as prof:
        for _ in range(PROFILE_PASSES):
            result = allocate_module(prepared, machine, allocator, options)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = allocate_module(prepared, machine, allocator, options)
        times.append(time.perf_counter() - start)
    return {
        "best_s": round(min(times), 4),
        "mean_s": round(sum(times) / len(times), 4),
        "rounds": result.stats.rounds,
        **fingerprint(result),
        "phases": prof.snapshot(digits=4),
    }


def git_commit() -> str:
    """The HEAD commit this report was generated from (provenance)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run(bench: str, model: str, allocators: list[str], repeats: int,
        jobs: int, spill_pressure: int | None = None) -> dict:
    if spill_pressure is not None:
        machine = make_machine(spill_pressure)
        prepared = prepare_module(make_benchmark(bench), machine)
    else:
        prepared, machine = prepared_module(bench, model)
    report = {
        "bench": bench,
        "model": model if spill_pressure is None
        else f"make_machine({spill_pressure})",
        "spill_pressure": spill_pressure,
        "repeats": repeats,
        "jobs": jobs,
        "python": sys.version.split()[0],
        # Resolving the backend here also front-loads the (lazy) numpy
        # import, keeping it out of the profiled phase breakdowns.
        **dataflow_backend_fields(),
        "knobs": runtime_knobs(),
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "baseline_full_s": BASELINE_FULL_S,
        "allocators": {},
    }
    for name in allocators:
        report["allocators"][name] = time_allocator(
            prepared, machine, name, repeats, jobs
        )
        entry = report["allocators"][name]
        print(f"{name:>16}: {entry['best_s']:.3f}s "
              f"({entry['rounds']} rounds)")
    full = report["allocators"].get("full")
    if full:
        report["speedup_full"] = round(BASELINE_FULL_S / full["best_s"], 2)
        print(f"full speedup vs pre-bitset baseline "
              f"({BASELINE_FULL_S}s): {report['speedup_full']}x")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="jess")
    parser.add_argument("--model", default="24")
    parser.add_argument("--allocators", nargs="*", default=TIMED,
                        choices=sorted(ALLOCATORS))
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool width for allocate_module")
    parser.add_argument("--spill-pressure", type=int, default=None,
                        metavar="N",
                        help="time against an N-register make_machine() "
                             "squeeze instead of --model, forcing "
                             "multi-round (spill) allocations")
    parser.add_argument("--out", default="BENCH_allocator_speed.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.spill_pressure is not None and args.spill_pressure < 2:
        parser.error("--spill-pressure must be >= 2")
    report = run(args.bench, args.model, args.allocators, args.repeats,
                 args.jobs, args.spill_pressure)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


# ----------------------------------------------------------------------
# pytest-benchmark entry points (kept for `pytest benchmarks/`)

try:
    import pytest
except ImportError:  # pragma: no cover - scripts-only environments
    pytest = None

if pytest is not None:
    @pytest.mark.parametrize("allocator", TIMED)
    def test_allocation_time(benchmark, allocator):
        prepared, machine = prepared_module("jess", "24")
        benchmark.pedantic(
            lambda: allocate_module(prepared, machine,
                                    ALLOCATORS[allocator]()),
            rounds=3, iterations=1, warmup_rounds=0,
        )


if __name__ == "__main__":
    main()
