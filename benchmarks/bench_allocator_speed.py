"""Compile-time cost of the allocators themselves.

The paper argues its approach is practical inside a JIT (unlike the
integer-programming allocators of Section 7).  This bench times each
allocator over the same prepared module so the RPG/CPG overhead is
visible next to the baselines.  No figure corresponds to this; it backs
the Section 7 discussion and DESIGN.md's complexity notes.
"""

import pytest

from conftest import ALLOCATORS, prepared_module

from repro.pipeline import allocate_module

TIMED = [
    "chaitin",
    "priority",
    "briggs",
    "iterated",
    "optimistic",
    "callcost",
    "only-coalescing",
    "full",
]


@pytest.mark.parametrize("allocator", TIMED)
def test_allocation_time(benchmark, allocator):
    prepared, machine = prepared_module("jess", "24")
    benchmark.pedantic(
        lambda: allocate_module(prepared, machine,
                                ALLOCATORS[allocator]()),
        rounds=3, iterations=1, warmup_rounds=0,
    )
