"""Figure 9(a)/(c) — ratio of eliminated move instructions.

The paper plots, for 16 and 32 registers, the number of moves each
algorithm eliminates relative to the base (Chaitin-style coloring with
aggressive coalescing), for {ours (only coalescing), optimistic
coalescing, Briggs + aggressive}, over SPECjvm98 plus separate float
rows for mpegaudio and mtrt.

Shape expectations (Section 6.1): all three approaches land close
together — the paper reports ours 1.2% *better* than optimistic at 16
registers and 3.8% worse at 32.  We assert our geometric-mean ratio
stays within 15% of the base on both models.
"""

from repro.ir.values import RegClass
from repro.reporting import format_ratio_table, geomean

from conftest import all_int_rows, emit, fp_rows, sweep

COLUMNS = ["chaitin", "briggs", "optimistic", "only-coalescing"]
FP_BENCHES = {"mpegaudio fp": "mpegaudio", "mtrt fp": "mtrt"}


def collect_eliminated(model: str):
    cells = {}
    for bench in all_int_rows():
        for alloc in COLUMNS:
            stats = sweep(bench, model, alloc).stats
            cells[(bench, alloc)] = float(
                stats.moves_eliminated_class.get(RegClass.INT, 0)
            )
    for row, bench in FP_BENCHES.items():
        for alloc in COLUMNS:
            stats = sweep(bench, model, alloc).stats
            cells[(row, alloc)] = float(
                stats.moves_eliminated_class.get(RegClass.FLOAT, 0)
            )
    return cells


def check_shape(cells, rows):
    for alloc in ("briggs", "optimistic", "only-coalescing"):
        ratios = [
            cells[(r, alloc)] / cells[(r, "chaitin")]
            for r in rows if cells.get((r, "chaitin"), 0) > 0
        ]
        assert geomean(ratios) > 0.85, (
            f"{alloc}: move elimination collapsed vs the base "
            f"(geomean {geomean(ratios):.3f})"
        )


def _run(model: str, fig_name: str, title: str, benchmark):
    benchmark.pedantic(
        lambda: sweep("jess", model, "only-coalescing"),
        rounds=1, iterations=1,
    )
    rows = all_int_rows() + fp_rows()
    cells = collect_eliminated(model)
    table = format_ratio_table(title, rows, COLUMNS, cells,
                               base_column="chaitin")
    emit(fig_name, table)
    check_shape(cells, rows)


def test_fig9a_eliminated_moves_16(benchmark):
    _run("16", "fig9a",
         "Figure 9(a): eliminated-move ratio vs Chaitin+aggressive, "
         "16 registers", benchmark)


def test_fig9c_eliminated_moves_32(benchmark):
    _run("32", "fig9c",
         "Figure 9(c): eliminated-move ratio vs Chaitin+aggressive, "
         "32 registers", benchmark)
