"""Ablation: switching off one preference type at a time.

DESIGN.md calls out the per-type design choices; this bench quantifies
each type's contribution by removing it from the full configuration and
measuring the cycle regression at 24 registers:

* ``no-volatility`` — drop the type-3 volatile/non-volatile groups (and
  with them the active memory spilling);
* ``no-paired``     — drop the type-4 sequential± edges;
* ``no-byte``       — drop the type-2 limited-register groups;
* ``no-coalesce``   — drop types 1 and 4 coalesce edges.

Expected: volatility matters most on the call-heavy tests; paired loads
matter on mpegaudio/mtrt; byte loads on compress; coalescing everywhere.
"""

from repro.reporting import format_table

from conftest import all_int_rows, emit, sweep

MODEL = "24"
COLUMNS = ["full", "no-volatility", "no-paired", "no-byte", "no-coalesce"]


def test_ablation_preference_types(benchmark):
    benchmark.pedantic(lambda: sweep("compress", MODEL, "no-byte"),
                       rounds=1, iterations=1)
    rows = all_int_rows()
    cells = {
        (bench, alloc): sweep(bench, MODEL, alloc).cycles.total
        for bench in rows for alloc in COLUMNS
    }
    table = format_table(
        "Ablation: estimated cycles with one preference type removed, "
        "24 registers",
        rows, COLUMNS, cells, fmt="{:.0f}",
    )
    emit("ablation_prefs", table)

    # Volatility is the big lever on call-heavy tests...
    for bench in ("jess", "javac"):
        assert cells[(bench, "no-volatility")] > cells[(bench, "full")]
    # ...paired loads matter on the numeric float tests...
    assert cells[("mpegaudio", "no-paired")] > cells[("mpegaudio", "full")]
    # ...byte loads matter on compress...
    assert cells[("compress", "no-byte")] >= cells[("compress", "full")]
    # ...and nothing improves by *removing* information (small noise
    # tolerance; the selection is heuristic).
    for bench in rows:
        for column in COLUMNS[1:]:
            assert cells[(bench, column)] >= cells[(bench, "full")] * 0.97
