"""Ablation: the Coloring Precedence Graph vs. the plain stack order.

The CPG is the paper's device for "creating more chances" to honor
preferences: it relaxes the simplification stack into a partial order so
the selector can pick the highest-stakes node among all ready nodes.
This bench runs the same preference-aware selector with the partial
order replaced by the raw Briggs pop order (a chain-shaped precedence
graph) and reports how much of the benefit the CPG itself carries.

Expected: with the stack order, fewer preferences are honorable when
their node comes up (partners not colored yet / colored wrong), so
eliminated moves drop and estimated cycles rise on at least some tests.
"""

from repro.reporting import format_table, geomean

from conftest import all_int_rows, emit, sweep

MODEL = "24"


def test_ablation_cpg_order(benchmark):
    benchmark.pedantic(lambda: sweep("jess", MODEL, "full-nocpg"),
                       rounds=1, iterations=1)
    rows = all_int_rows()
    columns = ["full", "full-nocpg", "only-coalescing",
               "only-coalescing-nocpg"]
    cells = {}
    for bench in rows:
        for alloc in columns:
            run = sweep(bench, MODEL, alloc)
            cells[(bench, alloc)] = run.cycles.total
    table = format_table(
        "Ablation: CPG partial order vs simplification-stack order, "
        "24 registers (estimated cycles)",
        rows, columns, cells, fmt="{:.0f}",
    )

    moves_cells = {}
    for bench in rows:
        for alloc in columns:
            stats = sweep(bench, MODEL, alloc).stats
            moves_cells[(bench, alloc)] = float(stats.moves_eliminated)
    moves_table = format_table(
        "Ablation: eliminated moves, CPG vs stack order",
        rows, columns, moves_cells, fmt="{:.0f}",
    )
    emit("ablation_cpg", table + "\n\n" + moves_table)

    # The partial order must not hurt, and should help somewhere.
    cycles_ratio = geomean([
        cells[(r, "full")] / cells[(r, "full-nocpg")] for r in rows
    ])
    assert cycles_ratio <= 1.02, (
        f"CPG ordering made things worse overall ({cycles_ratio:.3f})"
    )
    moves_ratio = geomean([
        (moves_cells[(r, "only-coalescing")] or 1.0)
        / (moves_cells[(r, "only-coalescing-nocpg")] or 1.0)
        for r in rows
    ])
    assert moves_ratio >= 0.98, (
        "stack order coalesced clearly better than the CPG order"
    )
