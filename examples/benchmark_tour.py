#!/usr/bin/env python3
"""A quick tour of the evaluation: every allocator over one benchmark.

Runs the SPECjvm98-like `jess` module through every allocator on
the high-pressure (16-register) model and prints a comparison table —
a one-minute miniature of Figures 9-11.  Use the full benchmark harness
(pytest benchmarks/ --benchmark-only) to regenerate the paper's figures.

Run:  python examples/benchmark_tour.py [benchmark] [n_regs]
"""

import sys

from repro import (
    BENCHMARK_NAMES,
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    PreferenceDirectedAllocator,
    PriorityAllocator,
    allocate_module,
    make_benchmark,
    make_machine,
    prepare_module,
)
from repro.core import PreferenceConfig

ALLOCATORS = [
    ChaitinAllocator(),
    PriorityAllocator(),
    BriggsAllocator(),
    IteratedCoalescingAllocator(),
    OptimisticCoalescingAllocator(),
    CallCostAllocator(),
    PreferenceDirectedAllocator(PreferenceConfig.only_coalescing()),
    PreferenceDirectedAllocator(),
]


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "jess"
    n_regs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    if bench not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {bench!r}; "
                         f"choose from {BENCHMARK_NAMES}")

    machine = make_machine(n_regs)
    module = make_benchmark(bench)
    prepared = prepare_module(module, machine)
    print(f"benchmark {bench}: {len(prepared.functions)} functions, "
          f"{prepared.instruction_count()} lowered instructions, "
          f"{n_regs} registers/class\n")

    header = (f"{'allocator':24s} {'moves elim.':>12s} {'spills':>7s} "
              f"{'caller-sv':>10s} {'paired':>7s} {'cycles':>9s}")
    print(header)
    print("-" * len(header))
    baseline = None
    for allocator in ALLOCATORS:
        run = allocate_module(prepared, machine, allocator)
        stats, cycles = run.stats, run.cycles
        if baseline is None:
            baseline = cycles.total
        print(f"{allocator.name:24s} "
              f"{stats.moves_eliminated:5d}/{stats.moves_before:<6d} "
              f"{stats.spill_instructions:7d} "
              f"{cycles.caller_save_cycles:10.0f} "
              f"{cycles.paired_loads_fused:7d} "
              f"{cycles.total:9.0f}  "
              f"({baseline / cycles.total:.2f}x)")


if __name__ == "__main__":
    main()
