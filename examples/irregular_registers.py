#!/usr/bin/env python3
"""Irregular-register preferences in action: paired loads and byte loads.

Demonstrates the paper's type-2 (limited register usage) and type-4
(dependent register usage) preferences: the preference-directed
allocator steers paired-load destinations into adjacent registers and
byte-load destinations into the byte-capable subset, while a
preference-blind baseline only gets them by luck.

Run:  python examples/irregular_registers.py
"""

from repro import (
    ChaitinAllocator,
    IRBuilder,
    PreferenceDirectedAllocator,
    allocate_function,
    clone_function,
    estimate_cycles,
    high_pressure,
    prepare_function,
    print_function,
)
from repro.ir.values import Const, RegClass


def build_kernel():
    """A small filter: paired loads feeding arithmetic plus byte data."""
    b = IRBuilder("filter8", n_params=2)        # p0 = samples, p1 = flags
    i = b.const(0)
    acc = b.const(0)
    b.jump("loop")
    b.block("loop")
    # two coupled-load opportunities per iteration
    s0 = b.load(b.param(0), 0)
    s1 = b.load(b.param(0), 4)
    s2 = b.load(b.param(0), 16)
    s3 = b.load(b.param(0), 20)
    # a byte load: wants a byte-capable register (else +1 zext cycle)
    flag = b.load(b.param(1), 0, width="byte")
    mixed = b.add(s0, s1)
    mixed2 = b.add(s2, s3)
    gated = b.binop("and", mixed, flag)
    b.add(acc, gated, dst=acc)
    b.add(acc, mixed2, dst=acc)
    b.binop("add", i, Const(1), dst=i)
    cond = b.binop("cmplt", i, Const(4))
    b.branch(cond, "loop", "exit")
    b.block("exit")
    b.ret(acc)
    return b.finish()


def report_for(allocator, machine, base):
    func = clone_function(base)
    allocate_function(func, machine, allocator)
    return func, estimate_cycles(func, machine)


def main() -> None:
    machine = high_pressure()
    regfile = machine.file(RegClass.INT)
    byte_capable = sorted(r.index for r in regfile.byte_load_regs)
    print(f"target: {machine.name}; byte-capable registers: "
          f"{byte_capable}; paired loads need adjacent destinations\n")

    base = prepare_function(build_kernel(), machine)

    blind, blind_report = report_for(
        ChaitinAllocator(color_policy="index"), machine, base
    )
    ours, ours_report = report_for(
        PreferenceDirectedAllocator(), machine, base
    )

    print("=== preference-blind baseline (Chaitin + aggressive) ===")
    print(print_function(blind))
    print(f"\npaired loads fused : {blind_report.paired_loads_fused}")
    print(f"byte-load penalties: {blind_report.byte_penalty_cycles:.0f} "
          f"cycles")
    print(f"estimated cycles   : {blind_report.total:.0f}")

    print("\n=== preference-directed (RPG + CPG) ===")
    print(print_function(ours))
    print(f"\npaired loads fused : {ours_report.paired_loads_fused}")
    print(f"byte-load penalties: {ours_report.byte_penalty_cycles:.0f} "
          f"cycles")
    print(f"estimated cycles   : {ours_report.total:.0f}")

    assert ours_report.paired_loads_fused >= blind_report.paired_loads_fused
    assert ours_report.byte_penalty_cycles == 0
    print(f"\npreference-directed saves "
          f"{blind_report.total - ours_report.total:.0f} cycles "
          f"({blind_report.total / ours_report.total:.2f}x)")


if __name__ == "__main__":
    main()
