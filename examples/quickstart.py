#!/usr/bin/env python3
"""Quickstart: build a function, allocate it, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    IRBuilder,
    PreferenceDirectedAllocator,
    allocate_function,
    clone_function,
    estimate_cycles,
    middle_pressure,
    prepare_function,
    print_function,
    run_function,
    side_by_side,
    verify_allocation,
)
from repro.ir.values import Const
from repro.sim import Memory


def build_example():
    """sum of a[0..n) plus a helper call, with a value live across it."""
    b = IRBuilder("dot_step", n_params=2)       # p0 = array base, p1 = n
    i = b.const(0)
    acc = b.const(0)
    b.jump("loop")
    b.block("loop")
    offset = b.binop("shl", i, Const(2))
    addr = b.add(b.param(0), offset)
    lo = b.load(addr, 0)                        # paired-load candidates
    hi = b.load(addr, 4)
    b.add(acc, lo, dst=acc)
    b.add(acc, hi, dst=acc)
    scaled = b.call("helper", [acc], returns=True)
    b.add(acc, scaled, dst=acc)                 # acc lives across the call
    b.binop("add", i, Const(1), dst=i)
    cond = b.binop("cmplt", i, b.param(1))
    b.branch(cond, "loop", "exit")
    b.block("exit")
    b.ret(acc)
    return b.finish()


def main() -> None:
    machine = middle_pressure()
    func = build_example()
    print("=== source IR ===")
    print(print_function(func))

    # SSA -> DCE -> out-of-SSA -> calling convention.
    prepared = prepare_function(clone_function(func), machine)
    before = clone_function(prepared)

    # The paper's allocator, full preference set.
    result = allocate_function(prepared, machine,
                               PreferenceDirectedAllocator())
    verify_allocation(prepared, machine)

    print("\n=== lowered vs allocated ===")
    print(side_by_side(before, prepared, ("lowered", "allocated")))

    stats = result.stats
    print("\n=== allocation stats ===")
    print(f"moves eliminated : {stats.moves_eliminated}/{stats.moves_before}")
    print(f"spill instructions: {stats.spill_instructions}")
    print(f"rounds            : {stats.rounds}")

    report = estimate_cycles(prepared, machine)
    print("\n=== cycle estimate (appendix cost model) ===")
    print(report.describe())
    print(f"paired loads fused: {report.paired_loads_fused}")

    # The allocated code still computes the same thing.
    args = [1024, 3]
    want = run_function(func, args, machine=machine, memory=Memory())
    got = run_function(prepared, args, machine=machine, memory=Memory())
    print(f"\nsemantics check: {want.value} == {got.value} "
          f"-> {'OK' if want.value == got.value else 'MISMATCH'}")
    assert want.value == got.value


if __name__ == "__main__":
    main()
