#!/usr/bin/env python3
"""The paper's Figure 7, replayed step by step.

Prints the Register Preference Graph (with the strengths the paper
annotates: v4's 28, v3's 40/38, v1-v2's 50/48), the Coloring Precedence
Graph for K=3, the selection trace, and the final code — which matches
Figure 7(h) exactly.

Run:  python examples/paper_example.py
"""

from repro import print_function
from repro.analysis.interference import build_interference
from repro.analysis.renumber import renumber
from repro.core import (
    CostModel,
    PreferenceDirectedAllocator,
    build_cpg,
    build_rpg,
)
from repro.ir.clone import clone_function
from repro.ir.values import RegClass
from repro.regalloc import allocate_function
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.simplify import simplify
from repro.sim.cycles import estimate_cycles
from repro.target import figure7_machine, lower_function
from repro.workloads import figure7_function


def main() -> None:
    machine = figure7_machine()
    func = figure7_function()
    print("=== Figure 7(a): the input program ===")
    print(print_function(func))

    lower_function(func, machine)
    print("\n=== after calling-convention lowering "
          "(arg0 = r1, as in the paper) ===")
    print(print_function(func))

    # --- the analysis structures, on a working copy --------------------
    probe = clone_function(func)
    renumber(probe)
    costs = CostModel(probe, machine)
    rpg = build_rpg(probe, machine, costs)
    print("\n=== Register Preference Graph (Figure 7(c)) ===")
    print("(the paper's annotated strengths: v4 prefers non-volatile at "
          "28;\n v3 coalesces with v0 at vol:40/n-vol:38; the v1-v2 "
          "sequential pair\n is vol:50/n-vol:48)")
    print(rpg)

    ig = build_interference(probe)
    graph = build_alloc_graph(ig, machine, RegClass.INT)
    wig = graph.snapshot_active_adjacency()
    simplification = simplify(graph, optimistic=True)
    print("\n=== simplification stack (push order) ===")
    print("  " + ", ".join(str(n) for n in simplification.stack))

    cpg = build_cpg(graph, wig, simplification)
    print("\n=== Coloring Precedence Graph (Figure 7(e), K=3) ===")
    print(cpg)

    # --- the actual allocation, with its decision trace ----------------
    allocator = PreferenceDirectedAllocator(keep_trace=True)
    result = allocate_function(func, machine, allocator)
    print("\n=== selection trace (Section 5.3) ===")
    print(allocator.last_trace)

    print("\n=== Figure 7(h): the final code ===")
    print(print_function(func))

    stats = result.stats
    report = estimate_cycles(func, machine)
    print(f"\nmoves eliminated: {stats.moves_eliminated}"
          f"/{stats.moves_before} (the paper eliminates both copies)")
    print(f"paired loads fused: {report.paired_loads_fused} "
          f"(the paper's coupled load r2,r3 = [r1])")
    assert stats.moves_eliminated == stats.moves_before == 3
    assert report.paired_loads_fused == 1


if __name__ == "__main__":
    main()
