#!/usr/bin/env python3
"""Volatile vs. non-volatile selection on call-heavy code.

Reproduces the paper's Section 6.2 observation in miniature: on code
that calls frequently, allocators that ignore volatility pay heavy
caller-side save/restore costs, the Lueh–Gross call-cost approach fixes
most of it, and the integrated preference-directed selection also folds
in coalescing and dedicated-register decisions.

Run:  python examples/callcost_comparison.py
"""

from repro import (
    BriggsAllocator,
    CallCostAllocator,
    IRBuilder,
    PreferenceDirectedAllocator,
    allocate_function,
    clone_function,
    estimate_cycles,
    high_pressure,
    prepare_function,
)
from repro.core import PreferenceConfig
from repro.ir.values import Const


def build_dispatcher():
    """A dispatch-style function: values live across many calls."""
    b = IRBuilder("dispatch", n_params=3)
    state = b.add(b.param(0), b.param(1))       # live across everything
    table = b.move(b.param(2))                  # likewise
    i = b.const(0)
    b.jump("loop")
    b.block("loop")
    key = b.load(table, 0)
    r1 = b.call("ext0", [key, state], returns=True)
    r2 = b.call("ext1", [r1], returns=True)
    r3 = b.call("ext2", [r2, state], returns=True)
    b.add(state, r3, dst=state)
    b.binop("add", i, Const(1), dst=i)
    cond = b.binop("cmplt", i, Const(3))
    b.branch(cond, "loop", "exit")
    b.block("exit")
    b.ret(state)
    return b.finish()


CONTENDERS = [
    ("volatile-first Briggs", lambda: BriggsAllocator(
        color_policy="volatile_first")),
    ("nonvolatile-first Briggs", BriggsAllocator),
    ("aggressive+volatility (Lueh-Gross)", CallCostAllocator),
    ("only-coalescing (ours, ablated)", lambda: PreferenceDirectedAllocator(
        PreferenceConfig.only_coalescing())),
    ("full preferences (ours)", PreferenceDirectedAllocator),
]


def main() -> None:
    machine = high_pressure()
    base = prepare_function(build_dispatcher(), machine)
    print(f"{'allocator':38s} {'caller-save':>12s} {'callee-save':>12s} "
          f"{'moves kept':>11s} {'cycles':>9s}")
    rows = []
    for label, factory in CONTENDERS:
        func = clone_function(base)
        result = allocate_function(func, machine, factory())
        report = estimate_cycles(func, machine)
        rows.append((label, report))
        print(f"{label:38s} {report.caller_save_cycles:12.0f} "
              f"{report.callee_save_cycles:12.0f} "
              f"{report.moves_remaining:11d} {report.total:9.0f}")

    by_label = dict(rows)
    worst = by_label["volatile-first Briggs"]
    ours = by_label["full preferences (ours)"]
    print(f"\nfull preferences vs volatile-first baseline: "
          f"{worst.total / ours.total:.2f}x faster "
          f"({worst.caller_save_cycles - ours.caller_save_cycles:.0f} "
          f"caller-save cycles avoided)")
    assert ours.caller_save_cycles < worst.caller_save_cycles
    assert ours.total <= by_label["aggressive+volatility (Lueh-Gross)"].total


if __name__ == "__main__":
    main()
