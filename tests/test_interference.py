"""Interference graph construction: the Chaitin rules."""

from repro.analysis.interference import build_interference
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, ConstInst, Move, Ret, Store
from repro.ir.values import Const, PReg, RegClass, VReg

from conftest import build_counted_loop


class TestBasics:
    def test_simultaneously_live_interfere(self):
        b = IRBuilder("f", n_params=0)
        x = b.const(1)
        y = b.const(2)
        z = b.add(x, y)
        b.ret(z)
        func = b.finish()
        ig = build_interference(func)
        assert ig.interferes(x, y)
        assert not ig.interferes(x, z)

    def test_move_exception(self):
        # dst = src adds no dst-src edge even though src stays live.
        a, tmp, out = VReg(0, name="a"), VReg(1, name="t"), VReg(2, name="o")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(a, 1),
            Move(tmp, a),
            # `a` still live here (used below) alongside tmp
            ConstInst(out, 2),
            Store(a, 0, tmp),
            Ret(a),
        ])])
        ig = build_interference(func)
        assert not ig.interferes(tmp, a)
        assert ig.interferes(out, a)

    def test_redefinition_after_copy_creates_edge(self):
        # a = ...; t = a; a = ... (while t live); use t, a
        a, t = VReg(0, name="a"), VReg(1, name="t")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(a, 1),
            Move(t, a),
            ConstInst(a, 2),
            Store(a, 0, t),
            Ret(),
        ])])
        ig = build_interference(func)
        assert ig.interferes(t, a)

    def test_dead_def_still_clobbers(self):
        # x defined but never used while y is live across: they interfere.
        x, y = VReg(0, name="x"), VReg(1, name="y")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(y, 1),
            ConstInst(x, 2),  # dead def
            Ret(y),
        ])])
        ig = build_interference(func)
        assert ig.interferes(x, y)

    def test_cross_class_never_interferes(self):
        b = IRBuilder("f", n_params=0)
        x = b.const(1)
        f = b.const(1.0, RegClass.FLOAT)
        y = b.add(x, Const(1))
        g = b.binop("fadd", f, Const(1.0, RegClass.FLOAT))
        s = b.unary("ftoi", g, rclass=RegClass.INT)
        t = b.add(y, s)
        b.ret(t)
        func = b.finish()
        ig = build_interference(func)
        assert not ig.interferes(x, f)


class TestPhysical:
    def test_preg_live_range_interferes(self):
        r0 = PReg(0)
        v = VReg(1, name="v")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(v, 7),
            ConstInst(r0, 1),            # r0 live to the call
            Call("g", reg_uses=[r0]),
            Ret(v),
        ])])
        ig = build_interference(func)
        assert ig.interferes(v, r0)

    def test_preg_preg_edges_implicit(self):
        r0, r1 = PReg(0), PReg(1)
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(r0, 1),
            ConstInst(r1, 2),
            Call("g", reg_uses=[r0, r1]),
            Ret(),
        ])])
        ig = build_interference(func)
        assert ig.interferes(r0, r1)          # implicit, by identity
        assert r1 not in ig.adjacency.get(r0, set())  # not stored

    def test_call_return_def_interferes_with_crossing(self):
        r0 = PReg(0)
        keep = VReg(1, name="keep")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(keep, 7),
            Call("g", reg_defs=[r0]),
            Move(VReg(2), r0),
            Store(VReg(2), 0, keep),
            Ret(),
        ])])
        ig = build_interference(func)
        assert ig.interferes(keep, r0)

    def test_calls_do_not_clobber_volatiles(self):
        # Soft-cost model: a vreg live across a call does NOT interfere
        # with registers the call leaves alone.
        r0 = PReg(0)
        keep = VReg(1, name="keep")
        func = Function("f", blocks=[BasicBlock("entry", [
            ConstInst(keep, 7),
            Call("g"),
            Ret(keep),
        ])])
        ig = build_interference(func)
        assert not ig.interferes(keep, r0)


class TestMoveList:
    def test_moves_collected(self):
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        u = b.move(t)
        b.ret(u)
        func = b.finish()
        ig = build_interference(func)
        assert len(ig.moves) == 2

    def test_loop_graph_has_no_self_edges(self):
        func = build_counted_loop()
        ig = build_interference(func)
        for node in ig.nodes():
            assert node not in ig.neighbors(node)
