"""Liveness dataflow, including phi edge semantics and physical registers."""

from repro.analysis.liveness import (
    compute_liveness,
    instruction_liveness,
    phi_uses_on_edge,
)
from repro.cfg.analysis import build_cfg
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, Jump, Move, Phi, Ret
from repro.ir.values import Const, PReg, VReg

from conftest import build_counted_loop, build_diamond


class TestBasicLiveness:
    def test_param_live_into_loop(self):
        func = build_counted_loop()
        liveness = compute_liveness(func)
        p0 = func.params[0]
        assert p0 in liveness.live_in["head"]
        assert p0 not in liveness.live_in["exit"]

    def test_loop_carried_values_live_around_backedge(self):
        func = build_counted_loop()
        liveness = compute_liveness(func)
        # The accumulator and counter are live out of the loop head
        # (they flow around the back edge).
        head_out = liveness.live_out["head"]
        assert len([v for v in head_out if v.rclass.value == "int"]) >= 2

    def test_diamond_branch_values(self):
        func = build_diamond()
        liveness = compute_liveness(func)
        p0, p1 = func.params
        assert p0 in liveness.live_in["then"]
        assert p1 in liveness.live_in["else_"]
        assert p0 not in liveness.live_in["merge"]

    def test_nothing_live_out_of_exit(self):
        func = build_diamond()
        liveness = compute_liveness(func)
        assert liveness.live_out["merge"] == set()


class TestPhiSemantics:
    def build_phi_func(self):
        a, b, c = VReg(10, name="a"), VReg(11, name="b"), VReg(12, name="c")
        func = Function("f", blocks=[
            BasicBlock("entry", [Move(a, VReg(1)), Jump("m")]),
            BasicBlock("side", [Move(b, VReg(2)), Jump("m")]),
            BasicBlock("m", [Phi(c, {"entry": a, "side": b}), Ret(c)]),
        ])
        return func, a, b, c

    def test_phi_arm_not_live_into_phi_block(self):
        func, a, b, c = self.build_phi_func()
        liveness = compute_liveness(func)
        assert a not in liveness.live_in["m"]
        assert b not in liveness.live_in["m"]

    def test_phi_arm_live_out_of_pred(self):
        func, a, b, c = self.build_phi_func()
        liveness = compute_liveness(func)
        assert a in liveness.live_out["entry"]

    def test_phi_uses_on_edge(self):
        func, a, b, c = self.build_phi_func()
        assert phi_uses_on_edge(func.block("m"), "entry") == {a}
        assert phi_uses_on_edge(func.block("m"), "side") == {b}

    def test_phi_dst_not_live_in(self):
        func, a, b, c = self.build_phi_func()
        liveness = compute_liveness(func)
        assert c not in liveness.live_in["m"]


class TestPhysicalRegisters:
    def test_arg_registers_live_to_call(self):
        r0 = PReg(0)
        func = Function("f", blocks=[BasicBlock("entry", [
            Move(r0, VReg(1)),
            Call("g", reg_uses=[r0]),
            Ret(),
        ])])
        after = instruction_liveness(func, compute_liveness(func))
        move = func.entry.instrs[0]
        assert r0 in after[id(move)]

    def test_return_register_live_to_ret(self):
        r0 = PReg(0)
        func = Function("f", blocks=[BasicBlock("entry", [
            Move(r0, VReg(1)),
            Ret(None, reg_uses=[r0]),
        ])])
        liveness = compute_liveness(func)
        assert r0 in liveness.use["entry"] or r0 in liveness.defs["entry"]


class TestInstructionLiveness:
    def test_value_dies_at_last_use(self):
        b = IRBuilder("f", n_params=1)
        t = b.add(b.param(0), Const(1))
        u = b.add(t, Const(2))
        b.ret(u)
        func = b.finish()
        after = instruction_liveness(func, compute_liveness(func))
        first, second, _ = func.entry.instrs
        assert t in after[id(first)]
        assert t not in after[id(second)]

    def test_live_across_instr_helper(self):
        func = build_counted_loop()
        liveness = compute_liveness(func)
        head = func.block("head")
        live = liveness.live_across_instr(head, 0)
        assert func.params[0] in live
