"""IR validator: every enforced invariant has a violating case."""

import pytest

from repro.errors import IRValidationError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import BinOp, Jump, Move, Phi, Ret
from repro.ir.validate import validate_function, validate_module
from repro.ir.values import RegClass, VReg

from conftest import build_diamond, build_straightline


def ivreg(i, name=None):
    return VReg(i, RegClass.INT, name)


def fvreg(i, name=None):
    return VReg(i, RegClass.FLOAT, name)


class TestStructural:
    def test_valid_function_passes(self):
        validate_function(build_diamond())

    def test_empty_function_rejected(self):
        with pytest.raises(IRValidationError):
            validate_function(Function("f"))

    def test_missing_terminator(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Move(ivreg(0), ivreg(1))])
        ])
        with pytest.raises(IRValidationError, match="terminator"):
            validate_function(func)

    def test_terminator_mid_block(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Ret(), Ret()])
        ])
        with pytest.raises(IRValidationError, match="mid-block"):
            validate_function(func)

    def test_unknown_branch_target(self):
        func = Function("f", blocks=[BasicBlock("entry", [Jump("ghost")])])
        with pytest.raises(IRValidationError, match="unknown block"):
            validate_function(func)

    def test_duplicate_labels(self):
        func = Function("f", blocks=[
            BasicBlock("x", [Ret()]), BasicBlock("x", [Ret()])
        ])
        with pytest.raises(IRValidationError, match="duplicate"):
            validate_function(func)


class TestPhis:
    def test_phi_must_lead_block(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Jump("m")]),
            BasicBlock("m", [
                Move(ivreg(0), ivreg(1)),
                Phi(ivreg(2), {"entry": ivreg(1)}),
                Ret(),
            ]),
        ])
        with pytest.raises(IRValidationError, match="lead"):
            validate_function(func)

    def test_phi_incoming_must_match_preds(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Jump("m")]),
            BasicBlock("m", [Phi(ivreg(0), {"bogus": ivreg(1)}), Ret()]),
        ])
        with pytest.raises(IRValidationError, match="incoming"):
            validate_function(func)


class TestClasses:
    def test_move_class_mismatch(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Move(ivreg(0), fvreg(1)), Ret()])
        ])
        with pytest.raises(IRValidationError, match="mixes classes"):
            validate_function(func)

    def test_binop_class_mismatch(self):
        func = Function("f", blocks=[
            BasicBlock("entry",
                       [BinOp("add", ivreg(0), ivreg(1), fvreg(2)), Ret()])
        ])
        with pytest.raises(IRValidationError, match="mixes classes"):
            validate_function(func)

    def test_compare_may_mix(self):
        func = Function("f", blocks=[
            BasicBlock("entry",
                       [BinOp("cmplt", ivreg(0), fvreg(1), fvreg(2)), Ret()])
        ])
        validate_function(func)


class TestSSAMode:
    def test_single_assignment_enforced(self):
        v = ivreg(5)
        func = Function("f", blocks=[
            BasicBlock("entry", [Move(v, ivreg(1)), Move(v, ivreg(2)), Ret()])
        ])
        validate_function(func)  # fine without ssa flag
        with pytest.raises(IRValidationError, match="SSA"):
            validate_function(func, ssa=True)

    def test_param_redefinition_rejected_in_ssa(self):
        func = Function("f", params=[ivreg(0, "p")], blocks=[
            BasicBlock("entry", [Move(ivreg(0, "p"), ivreg(1)), Ret()])
        ])
        with pytest.raises(IRValidationError, match="SSA"):
            validate_function(func, ssa=True)


class TestModuleValidation:
    def test_module_validates_all(self):
        from repro.ir.function import Module

        module = Module("m")
        module.add(build_straightline())
        module.add(Function("bad", blocks=[BasicBlock("e", [])]))
        with pytest.raises(IRValidationError):
            validate_module(module)
