"""All allocator variants on shared fixtures: validity + semantics."""

import pytest

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.ir.values import VReg
from repro.pipeline import prepare_function
from repro.regalloc import (
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    allocate_function,
    verify_allocation,
)
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import high_pressure, make_machine

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_diamond,
    build_paired_loads,
    build_straightline,
)

ALLOCATORS = [
    ChaitinAllocator,
    BriggsAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    CallCostAllocator,
    lambda: PreferenceDirectedAllocator(PreferenceConfig.only_coalescing()),
    PreferenceDirectedAllocator,
]

FIXTURES = [
    (build_straightline, [3, 4]),
    (build_diamond, [1, 9]),
    (build_diamond, [9, 1]),
    (build_counted_loop, [6]),
    (build_call_heavy, [2, 5]),
    (build_paired_loads, [128]),
]


@pytest.mark.parametrize("make_alloc", ALLOCATORS,
                         ids=lambda a: a().name)
class TestEveryAllocator:
    def test_valid_and_semantics_preserved(self, make_alloc, machine16):
        for build, args in FIXTURES:
            func = prepare_function(build(), machine16)
            reference = run_function(
                clone_function(func), args, machine=machine16,
                memory=Memory(),
            )
            allocate_function(func, machine16, make_alloc())
            verify_allocation(func, machine16)
            got = run_function(func, args, machine=machine16,
                               memory=Memory())
            assert got.value == reference.value

    def test_no_virtual_registers_remain(self, make_alloc, machine24):
        func = prepare_function(build_call_heavy(), machine24)
        allocate_function(func, machine24, make_alloc())
        for _, instr in func.instructions():
            for reg in list(instr.defs()) + list(instr.used_regs()):
                assert not isinstance(reg, VReg)

    def test_tiny_register_file_forces_spills(self, make_alloc):
        machine = make_machine(4)
        from repro.ir.builder import IRBuilder

        b = IRBuilder("pressure", n_params=1)
        vals = [b.add(b.param(0), __import__(
            "repro.ir.values", fromlist=["Const"]).Const(i))
            for i in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        func = prepare_function(b.finish(), machine)
        reference = run_function(clone_function(func), [5],
                                 machine=machine, memory=Memory())
        result = allocate_function(func, machine, make_alloc())
        verify_allocation(func, machine)
        assert result.stats.spill_instructions > 0
        got = run_function(func, [5], machine=machine, memory=Memory())
        assert got.value == reference.value

    def test_stats_populated(self, make_alloc, machine16):
        func = prepare_function(build_call_heavy(), machine16)
        result = allocate_function(func, machine16, make_alloc())
        stats = result.stats
        assert stats.allocator == make_alloc().name
        assert stats.rounds >= 1
        assert stats.moves_before >= stats.moves_eliminated >= 0
        assert stats.moves_before == sum(stats.moves_before_class.values())


class TestAllocatorDifferences:
    def test_chaitin_pessimistic_briggs_optimistic(self, machine16):
        # On colorable code they agree; the structural difference shows
        # in rounds on pressure (Chaitin restarts before select).
        machine = make_machine(4)
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("p", n_params=1)
        vals = [b.add(b.param(0), Const(i)) for i in range(6)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        func = b.finish()
        f1 = prepare_function(clone_function(func), machine)
        f2 = prepare_function(clone_function(func), machine)
        r_chaitin = allocate_function(f1, machine, ChaitinAllocator())
        r_briggs = allocate_function(f2, machine, BriggsAllocator())
        assert r_briggs.stats.spill_instructions <= \
            r_chaitin.stats.spill_instructions

    def test_callcost_uses_fewer_caller_saves(self, machine16):
        from repro.sim.cycles import estimate_cycles

        func0 = prepare_function(build_call_heavy(), machine16)
        f1, f2 = clone_function(func0), clone_function(func0)
        allocate_function(
            f1, machine16, ChaitinAllocator(color_policy="volatile_first")
        )
        allocate_function(f2, machine16, CallCostAllocator())
        saves1 = estimate_cycles(f1, machine16).caller_save_cycles
        saves2 = estimate_cycles(f2, machine16).caller_save_cycles
        assert saves2 <= saves1

    def test_optimistic_coalescing_never_worse_spills_than_chaitin(self):
        machine = make_machine(4)
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("p", n_params=1)
        copies = [b.move(b.param(0)) for _ in range(3)]
        vals = [b.add(c, Const(i)) for i, c in enumerate(copies * 2)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        func = b.finish()
        f1 = prepare_function(clone_function(func), machine)
        f2 = prepare_function(clone_function(func), machine)
        r1 = allocate_function(f1, machine, ChaitinAllocator())
        r2 = allocate_function(f2, machine,
                               OptimisticCoalescingAllocator())
        assert r2.stats.spill_instructions <= r1.stats.spill_instructions
