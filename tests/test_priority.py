"""Chow–Hennessy priority-based coloring (the Section 7 contrast)."""

from repro.ir.clone import clone_function
from repro.pipeline import prepare_function, prepare_module, allocate_module
from repro.regalloc import (
    ChaitinAllocator,
    PriorityAllocator,
    allocate_function,
    verify_allocation,
)
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import high_pressure, make_machine
from repro.workloads import make_benchmark

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_diamond,
    build_straightline,
)

FIXTURES = [
    (build_straightline, [3, 4]),
    (build_diamond, [1, 9]),
    (build_counted_loop, [6]),
    (build_call_heavy, [2, 5]),
]


class TestCorrectness:
    def test_valid_and_semantics_preserved(self):
        machine = make_machine(8)
        for build, args in FIXTURES:
            func = prepare_function(build(), machine)
            want = run_function(clone_function(func), args,
                                machine=machine, memory=Memory()).value
            allocate_function(func, machine, PriorityAllocator())
            verify_allocation(func, machine)
            got = run_function(func, args, machine=machine,
                               memory=Memory()).value
            assert got == want

    def test_whole_benchmark_allocates(self):
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("jack"), machine)
        run = allocate_module(prepared, machine, PriorityAllocator())
        assert run.stats.rounds >= 1
        assert run.cycles.total > 0

    def test_spills_under_pressure(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        machine = make_machine(4)
        b = IRBuilder("p", n_params=1)
        vals = [b.add(b.param(0), Const(i)) for i in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        func = prepare_function(b.finish(), machine)
        result = allocate_function(func, machine, PriorityAllocator())
        verify_allocation(func, machine)
        assert result.stats.spill_instructions > 0


class TestOrderingPolicy:
    def test_high_priority_ranges_keep_registers(self):
        # A hot (loop-resident) value and cold values contending for the
        # same small file: the hot one must not be the spilled one.
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        machine = make_machine(4)
        b = IRBuilder("p", n_params=1)
        cold = [b.add(b.param(0), Const(i)) for i in range(6)]
        hot = b.const(1)
        b.jump("head")
        b.block("head")
        b.binop("add", hot, Const(1), dst=hot)
        c = b.binop("cmplt", hot, Const(3))
        b.branch(c, "head", "exit")
        b.block("exit")
        acc = hot
        for v in cold:
            acc = b.add(acc, v)
        b.ret(acc)
        func = prepare_function(b.finish(), machine)
        result = allocate_function(func, machine, PriorityAllocator())
        verify_allocation(func, machine)
        # the hot accumulator never appears in spill code
        from repro.ir.instructions import SpillLoad, SpillStore

        spill_slots_in_loop = [
            i for i in func.block_map().get("head", func.entry).instrs
            if isinstance(i, (SpillLoad, SpillStore))
        ]
        assert not spill_slots_in_loop

    def test_paper_claim_packing_beats_priority_on_spills(self):
        # Section 7: Chaitin "favors packing live ranges", and priority
        # coloring "may lead to a loss of performance because of
        # spilling" — without coalescing, the priority order spills more
        # under the same pressure.
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("jess"), machine)
        pri = allocate_module(prepared, machine, PriorityAllocator())
        cha = allocate_module(prepared, machine, ChaitinAllocator())
        assert pri.stats.spill_instructions >= \
            cha.stats.spill_instructions

    def test_no_coalescing_by_design(self):
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("db"), machine)
        pri = allocate_module(prepared, machine, PriorityAllocator())
        cha = allocate_module(prepared, machine, ChaitinAllocator())
        assert pri.stats.moves_eliminated < cha.stats.moves_eliminated
