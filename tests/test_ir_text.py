"""Printer and parser: formatting and round trips."""

import pytest

from repro.errors import ParseError
from repro.ir.parser import parse_function, parse_module
from repro.ir.printer import print_function, side_by_side
from repro.ir.validate import validate_function

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_diamond,
    build_straightline,
)


def roundtrip(func):
    text = print_function(func)
    parsed = parse_function(text)
    validate_function(parsed)
    assert print_function(parsed) == text
    return parsed


class TestRoundTrip:
    def test_straightline(self):
        roundtrip(build_straightline())

    def test_diamond(self):
        roundtrip(build_diamond())

    def test_loop(self):
        roundtrip(build_counted_loop())

    def test_calls(self):
        roundtrip(build_call_heavy())

    def test_lowered_code_roundtrips(self):
        from repro.target import lower_function, middle_pressure

        func = build_call_heavy()
        lower_function(func, middle_pressure())
        roundtrip(func)

    def test_spill_code_roundtrips(self):
        text = """func f(%p0) -> value {
entry:
  spill slot0 = %p0
  %t = reload slot0
  ret %t
}"""
        parsed = parse_function(text)
        assert print_function(parsed) == text


class TestParserErrors:
    def test_bad_header(self):
        with pytest.raises(ParseError):
            parse_function("nonsense {")

    def test_unterminated(self):
        with pytest.raises(ParseError):
            parse_function("func f() {\nentry:\n  ret")

    def test_instruction_before_label(self):
        with pytest.raises(ParseError):
            parse_function("func f() {\n  ret\n}")

    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_function("func f() {\nentry:\n  fandango %a\n}")

    def test_line_numbers_reported(self):
        with pytest.raises(ParseError) as err:
            parse_function("func f() {\nentry:\n  %a = frobnicate %b, %c\n}")
        assert "line 3" in str(err.value)


class TestParserSemantics:
    def test_float_prefix_infers_class(self):
        func = parse_function(
            "func f() {\nentry:\n  %f1 = 1.5\n  ret %f1\n}"
        )
        from repro.ir.values import RegClass

        (reg,) = [v for v in func.vregs()]
        assert reg.rclass is RegClass.FLOAT

    def test_module_parses_multiple_functions(self):
        text = (
            print_function(build_straightline())
            + "\n\n"
            + print_function(build_diamond())
        )
        module = parse_module(text)
        assert [f.name for f in module.functions] == ["straight", "diamond"]

    def test_comments_ignored(self):
        func = parse_function(
            "func f() {\n; a comment\nentry:\n  ret ; trailing\n}"
        )
        assert func.entry.instrs[0].is_terminator


class TestSideBySide:
    def test_columns_align(self):
        out = side_by_side(build_straightline(), build_diamond())
        lines = out.splitlines()
        assert all("|" in line for line in lines[2:])  # [1] is the rule
        assert "before" in lines[0] and "after" in lines[0]
