"""Functions, blocks, modules: structure and helpers."""

import pytest

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Jump, Move, Phi, Ret
from repro.ir.values import RegClass, VReg

from conftest import build_diamond, build_straightline


class TestBasicBlock:
    def test_terminator(self):
        blk = BasicBlock("b", [Move(VReg(0), VReg(1)), Ret()])
        assert isinstance(blk.terminator, Ret)

    def test_no_terminator(self):
        blk = BasicBlock("b", [Move(VReg(0), VReg(1))])
        assert blk.terminator is None

    def test_phis_lead(self):
        phi = Phi(VReg(0), {})
        blk = BasicBlock("b", [phi, Move(VReg(1), VReg(2)), Ret()])
        assert blk.phis() == [phi]
        assert len(blk.non_phi_instrs()) == 2

    def test_successors(self):
        blk = BasicBlock("b", [Jump("next")])
        assert blk.successors() == ("next",)

    def test_insert_before_terminator(self):
        blk = BasicBlock("b", [Ret()])
        mv = Move(VReg(0), VReg(1))
        blk.insert_before_terminator(mv)
        assert blk.instrs == [mv, blk.instrs[1]]
        assert isinstance(blk.instrs[1], Ret)


class TestFunction:
    def test_entry_is_first_block(self):
        func = build_straightline()
        assert func.entry.label == "entry"

    def test_entry_requires_blocks(self):
        with pytest.raises(IRError):
            Function("f").entry

    def test_block_lookup(self):
        func = build_diamond()
        assert func.block("merge").label == "merge"
        with pytest.raises(IRError):
            func.block("nope")

    def test_new_vreg_monotone_ids(self):
        func = Function("f")
        a = func.new_vreg()
        b = func.new_vreg(RegClass.FLOAT, name="x")
        assert b.id == a.id + 1
        assert b.rclass is RegClass.FLOAT and b.name == "x"

    def test_new_slot(self):
        func = Function("f")
        assert func.new_slot() == 0
        assert func.new_slot() == 1

    def test_vregs_collects_params_uses_defs(self):
        func = build_straightline()
        regs = func.vregs()
        assert set(func.params) <= regs
        assert len(regs) >= 5

    def test_instruction_count(self):
        func = build_straightline()
        assert func.instruction_count() == 4


class TestModule:
    def test_lookup(self):
        module = Module("m")
        func = module.add(build_straightline())
        assert module.function("straight") is func
        with pytest.raises(IRError):
            module.function("nope")

    def test_instruction_count_sums(self):
        module = Module("m")
        module.add(build_straightline())
        module.add(build_diamond())
        assert module.instruction_count() == (
            module.functions[0].instruction_count()
            + module.functions[1].instruction_count()
        )


class TestBuilder:
    def test_duplicate_label_rejected(self):
        b = IRBuilder("f")
        b.jump("x")
        b.block("x")
        with pytest.raises(IRError):
            b.block("x")

    def test_append_after_terminator_rejected(self):
        b = IRBuilder("f")
        b.ret()
        with pytest.raises(IRError):
            b.const(1)

    def test_finish_requires_terminators(self):
        b = IRBuilder("f")
        b.const(1)
        with pytest.raises(IRError):
            b.finish()

    def test_param_classes(self):
        b = IRBuilder("f", n_params=2,
                      param_classes=[RegClass.INT, RegClass.FLOAT])
        assert b.param(0).rclass is RegClass.INT
        assert b.param(1).rclass is RegClass.FLOAT

    def test_param_classes_length_mismatch(self):
        with pytest.raises(IRError):
            IRBuilder("f", n_params=2, param_classes=[RegClass.INT])

    def test_phi_inserted_at_head(self):
        b = IRBuilder("f", n_params=1)
        b.jump("m")
        b.block("m")
        b.const(5)
        b.phi({"entry": b.param(0)})
        assert len(b.current.phis()) == 1
        assert b.current.instrs[0] is b.current.phis()[0]
