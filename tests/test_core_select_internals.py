"""Internals of the Section 5.3 selector: asks, differentials, order,
deferred filtering, memory preference."""

import pytest

from repro.analysis.interference import build_interference
from repro.analysis.renumber import renumber
from repro.core.costs import CostModel
from repro.core.cpg import build_cpg
from repro.core.prefs import PreferenceConfig, build_rpg
from repro.core.select import NEG_INF, PreferenceSelector
from repro.ir.builder import IRBuilder
from repro.ir.values import Const, RegClass
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.simplify import simplify
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine, make_machine


def make_selector(func, machine, config=None, lowered=False):
    if not lowered:
        lower_function(func, machine)
    renumber(func)
    costs = CostModel(func, machine)
    rpg = build_rpg(func, machine, costs, config)
    ig = build_interference(func)
    graph = build_alloc_graph(ig, machine, RegClass.INT)
    wig = graph.snapshot_active_adjacency()
    simplification = simplify(graph, optimistic=True)
    cpg = build_cpg(graph, wig, simplification)
    return PreferenceSelector(
        graph=graph, rpg=rpg, cpg=cpg, machine=machine,
        regfile=machine.file(RegClass.INT), costs=costs,
        optimistic=simplification.optimistic,
    )


def web(selector, name):
    for node in selector.graph.adj:
        if getattr(node, "name", None) == name:
            return node
    raise AssertionError(f"no web named {name}")


class TestDifferential:
    def test_no_preferences_is_minus_infinity(self):
        b = IRBuilder("f", n_params=0)
        x = b.const(1)
        y = b.add(x, Const(1))
        b.ret(y)
        func = b.finish()
        config = PreferenceConfig(coalesce=False, dedicated=False,
                                  paired_loads=False, volatility=False,
                                  byte_loads=False)
        sel = make_selector(func, make_machine(8), config)
        node = sel.cpg.live_nodes()[0]
        assert sel._differential(node) == NEG_INF

    def test_single_preference_uses_own_strength(self):
        # One dedicated-coalesce edge only: differential = its strength.
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        b.ret(t)
        func = b.finish()
        config = PreferenceConfig.only_coalescing()
        machine = make_machine(8)
        sel = make_selector(func, machine, config)
        # the web that merges p0 has a coalesce edge to $r0 (entry move)
        node = web(sel, "p0")
        diff = sel._differential(node)
        assert diff not in (NEG_INF,)
        assert diff > 0

    def test_volatility_pair_differential(self):
        b = IRBuilder("f", n_params=1)
        keep = b.add(b.param(0), Const(1))
        b.call("helper", [b.param(0)])
        out = b.add(keep, Const(2))
        b.ret(out)
        func = b.finish()
        sel = make_selector(func, make_machine(8))
        node = web(sel, "keep") if _has_web(sel, "keep") else None
        # the call-crossing web has vol and nonvol asks whose strengths
        # differ by |3*crossings - 2|
        crossing = [
            n for n in sel.cpg.live_nodes()
            if sel.costs.crosses_calls(n)
        ]
        assert crossing
        for n in crossing:
            diff = sel._differential(n)
            assert diff >= abs(
                3 * sel.costs.cross_freq(n) - 2
            ) - 1e-9


def _has_web(sel, name):
    try:
        web(sel, name)
        return True
    except AssertionError:
        return False


class TestOrdering:
    def test_figure7_order(self):
        from repro.workloads.figures import figure7_function

        machine = figure7_machine()
        sel = make_selector(figure7_function(), machine)
        sel.run()
        # check the paper's final facts rather than internal order:
        v = {n.name.split(".")[0]: n for n in sel.assignment}
        assert sel.assignment[v["v4"]].index == 1       # v3 -> r1
        assert sel.assignment[v["v5"]].index == 3       # v4 -> r3
        assert sel.assignment[v["v2"]].index == 2       # v1 -> r2
        assert sel.assignment[v["v3"]].index == 3       # v2 -> r3
        assert sel.assignment[v["v1"]].index == 1       # v0 -> r1

    def test_highest_differential_first(self):
        from repro.workloads.figures import figure7_function

        machine = figure7_machine()
        sel = make_selector(figure7_function(), machine)
        queue = set(sel.cpg.initial_queue())
        chosen = sel._choose_node(queue)
        # v3's dedicated arg0 edge gives it the largest differential
        assert chosen.name.split(".")[0] == "v4"  # builder name for v3


class TestMemoryPreference:
    def test_cheap_crossing_web_spilled(self):
        # A web crossing many calls with minimal reuse prefers memory.
        b = IRBuilder("f", n_params=1)
        cheap = b.add(b.param(0), Const(1))
        for _ in range(4):
            b.call("helper", [b.param(0)])
        out = b.add(cheap, Const(1))
        b.ret(out)
        func = b.finish()
        machine = make_machine(4)      # both nonvolatile regs contested
        sel = make_selector(func, machine)
        sel.run()
        # spill_cost(cheap) = 1 + 2 = 3; nonvol placement = 1 > 0 so it
        # survives only if a nonvolatile register is free — with K=4
        # there are 2, and the p0 web takes one.  Whether it spills
        # depends on contention; assert consistency instead:
        for node in sel.spilled:
            vol = sel.costs.strength_volatile(node)
            nonvol = sel.costs.strength_nonvolatile(node)
            assert max(vol, nonvol) < 0 or not sel._available(node)

    def test_no_spill_temporaries_never_memory_spilled(self):
        b = IRBuilder("f", n_params=1)
        tmp = b.func.new_vreg(no_spill=True)
        b.const(1, dst=tmp)
        b.call("helper", [tmp])
        b.call("helper", [tmp])
        b.ret(tmp)
        func = b.finish()
        sel = make_selector(func, make_machine(8))
        sel.run()
        assert all(not n.no_spill for n in sel.spilled)


class TestDeferredFiltering:
    def test_seq_partner_filter_keeps_pairable_register(self):
        from conftest import build_paired_loads

        machine = make_machine(6)
        sel = make_selector(build_paired_loads(), machine)
        sel.run()
        # the two paired destinations must be adjacent
        dsts = [n for n in sel.assignment
                if (n.name or "").startswith("v")]
        pair_regs = sorted(
            sel.assignment[n].index for n in dsts
            if any(e.kind.name.startswith("SEQ")
                   for e in sel.rpg.edges_from(n))
        )
        if len(pair_regs) == 2:
            assert pair_regs[1] == pair_regs[0] + 1
