"""Error hierarchy, stats aggregation, and interpreter corner cases."""

import pytest

from repro.errors import (
    AllocationError,
    AllocationVerifyError,
    AnalysisError,
    IRError,
    IRValidationError,
    ParseError,
    ReproError,
    SimulationError,
    TargetError,
)
from repro.ir.values import RegClass
from repro.regalloc.base import AllocationStats


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        IRError, IRValidationError, ParseError, AnalysisError,
        AllocationError, AllocationVerifyError, SimulationError,
        TargetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_verify_error_is_allocation_error(self):
        assert issubclass(AllocationVerifyError, AllocationError)

    def test_validation_error_is_ir_error(self):
        assert issubclass(IRValidationError, IRError)

    def test_parse_error_carries_line(self):
        err = ParseError("bad token", line=7)
        assert err.line == 7
        assert "line 7" in str(err)

    def test_parse_error_without_line(self):
        err = ParseError("bad token")
        assert err.line is None
        assert str(err) == "bad token"


class TestStatsMerge:
    def make(self, moves=10, elim=5, loads=2, stores=1):
        stats = AllocationStats(allocator="x")
        stats.moves_before = moves
        stats.moves_eliminated = elim
        stats.spill_loads = loads
        stats.spill_stores = stores
        stats.rounds = 2
        stats.moves_before_class = {RegClass.INT: moves}
        stats.moves_eliminated_class = {RegClass.INT: elim}
        stats.nonvolatile_used = {RegClass.INT: 3}
        return stats

    def test_merge_sums_counters(self):
        a, b = self.make(), self.make(moves=4, elim=2, loads=0, stores=0)
        a.merge(b)
        assert a.moves_before == 14
        assert a.moves_eliminated == 7
        assert a.spill_instructions == 3
        assert a.moves_before_class[RegClass.INT] == 14

    def test_merge_takes_max_rounds(self):
        a, b = self.make(), self.make()
        b.rounds = 7
        a.merge(b)
        assert a.rounds == 7

    def test_merge_accumulates_new_classes(self):
        a = self.make()
        b = self.make()
        b.moves_before_class = {RegClass.FLOAT: 3}
        a.merge(b)
        assert a.moves_before_class[RegClass.FLOAT] == 3
        assert a.moves_before_class[RegClass.INT] == 10

    def test_derived_properties(self):
        stats = self.make()
        assert stats.moves_remaining == 5
        assert stats.spill_instructions == 3


class TestInterpreterBinding:
    def test_machine_binds_args_to_param_registers(self):
        from repro.pipeline import prepare_function
        from repro.sim.interp import run_function
        from repro.target.presets import make_machine

        from conftest import build_straightline

        machine = make_machine(8)
        func = prepare_function(build_straightline(), machine)
        # post-lowering, parameters only exist in $r0/$r1
        result = run_function(func, [30, 12], machine=machine)
        assert result.value == 30 + 12 + 10

    def test_without_machine_lowered_params_read_zero(self):
        from repro.pipeline import prepare_function
        from repro.sim.interp import run_function
        from repro.target.presets import make_machine

        from conftest import build_straightline

        machine = make_machine(8)
        func = prepare_function(build_straightline(), machine)
        result = run_function(func, [30, 12])  # no machine: regs unseeded
        assert result.value == 10

    def test_memory_shared_between_runs_when_passed(self):
        from repro.ir.builder import IRBuilder
        from repro.sim.interp import run_function
        from repro.sim.ops import Memory

        b = IRBuilder("writer", n_params=1)
        b.store(b.param(0), 0, b.const(99))
        b.ret()
        writer = b.finish()

        b2 = IRBuilder("reader", n_params=1)
        v = b2.load(b2.param(0), 0)
        b2.ret(v)
        reader = b2.finish()

        memory = Memory()
        run_function(writer, [500], memory=memory)
        assert run_function(reader, [500], memory=memory).value == 99
