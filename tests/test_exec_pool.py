"""The persistent worker pool: mechanics, faults, and the alloc path.

The pool contract under test (see :mod:`repro.exec.pool`): results come
back in submission order whatever the completion order; a crashed worker
is respawned and its job retried; a job past its deadline gets its
worker killed without stalling the rest of the batch; task errors
propagate deterministically instead of being retried; and — the property
everything else serves — a batch that survives faults is byte-identical
to a serial run.

Fault injection is deterministic (:class:`repro.exec.FaultPlan`, keyed
by pool-assigned job sequence numbers), so none of these tests rely on
timing races to produce a failure.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import AllocationError
from repro.exec import (
    DEFAULT_TASK,
    FaultPlan,
    FaultSpec,
    JobCrashError,
    JobDeadlineError,
    WorkerPool,
    WorkerPoolUnavailable,
)
from repro.exec.pool import resolve_task
from repro.ir.parser import parse_module
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import AllocationOptions
from repro.service.cache import ResultCache
from repro.service.protocol import AllocationRequest, MachineSpec
from repro.service.scheduler import (
    ALLOCATOR_FACTORIES,
    Scheduler,
    degrade_for,
    render_allocation,
)
from repro.target.presets import make_machine

#: fast-failure knobs shared by the mechanics tests
FAST = dict(heartbeat_s=0.05, backoff_s=0.01, start_timeout_s=30.0)

PERSISTENT = tuple(range(16))


def double(payload):
    return payload * 2


def failing(payload):
    raise ValueError(f"task rejected {payload!r}")


def run_batch(pool, payloads, deadline_s=None):
    with pool:
        return pool.run_batch(payloads, deadline_s=deadline_s)


class TestFaultPlan:
    def test_crash_on_fires_only_on_listed_attempts(self):
        plan = FaultPlan.crash_on(3)
        assert plan.lookup(3, 0).kind == "crash"
        assert plan.lookup(3, 1) is None
        assert plan.lookup(4, 0) is None

    def test_poison_persists_across_attempts(self):
        plan = FaultPlan.poison(1)
        for attempt in range(8):
            assert plan.lookup(1, attempt).kind == "error"

    def test_sleep_requires_positive_duration(self):
        with pytest.raises(ValueError, match="sleep_s"):
            FaultSpec("sleep", sleep_s=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec("segfault")

    def test_merged_and_truthiness(self):
        merged = FaultPlan.merged(FaultPlan.crash_on(0),
                                  FaultPlan.poison(2))
        assert merged.lookup(0, 0).kind == "crash"
        assert merged.lookup(2, 0).kind == "error"
        assert merged and not FaultPlan()


class TestResolveTask:
    def test_callable_passes_through(self):
        assert resolve_task(double) is double

    def test_module_attr_spec_resolves(self):
        from repro.exec.alloctask import run_alloc_job

        assert resolve_task(DEFAULT_TASK) is run_alloc_job

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError, match="module:attr"):
            resolve_task("no-colon-here")


class TestPoolMechanics:
    def test_results_in_submission_order(self):
        pool = WorkerPool(workers=2, task=double, **FAST)
        results = run_batch(pool, list(range(8)))
        assert [r.value for r in results] == [i * 2 for i in range(8)]
        assert all(r.ok and r.kind == "ok" and r.attempts == 1
                   for r in results)
        assert pool.counters["jobs_ok"] == 8

    def test_task_error_propagates_and_worker_survives(self):
        pool = WorkerPool(workers=2, task=failing, **FAST)
        with pool:
            first = pool.run_batch(["a"])
            # the worker that raised is still alive for the next batch
            second = pool.run_batch(["b"])
        for res in (first[0], second[0]):
            assert not res.ok and res.kind == "error"
            assert isinstance(res.error, ValueError)
            assert "task rejected" in str(res.error)
        assert pool.counters["jobs_error"] == 2
        assert pool.counters["crashes"] == 0

    def test_injected_error_is_not_retried(self):
        pool = WorkerPool(workers=1, task=double,
                          fault_plan=FaultPlan.poison(0), **FAST)
        results = run_batch(pool, [5, 6])
        assert results[0].kind == "error" and results[0].attempts == 1
        assert isinstance(results[0].error, RuntimeError)
        assert results[1].ok and results[1].value == 12
        assert pool.counters["retries"] == 0

    def test_crashed_worker_respawns_and_job_retries(self):
        pool = WorkerPool(workers=2, task=double,
                          fault_plan=FaultPlan.crash_on(1), **FAST)
        results = run_batch(pool, list(range(4)))
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert results[1].attempts == 2
        assert pool.counters["crashes"] >= 1
        assert pool.counters["retries"] >= 1
        assert pool.counters["respawns"] >= 1

    def test_persistent_crash_exhausts_retries(self):
        pool = WorkerPool(workers=2, task=double, max_retries=1,
                          fault_plan=FaultPlan.crash_on(
                              0, attempts=PERSISTENT), **FAST)
        results = run_batch(pool, [1, 2, 3])
        assert results[0].kind == "crash"
        assert isinstance(results[0].error, JobCrashError)
        assert results[0].attempts == 2  # first try + one retry
        # the rest of the batch was never held hostage
        assert [r.value for r in results[1:]] == [4, 6]
        assert pool.counters["jobs_crashed"] == 1

    def test_deadline_kills_and_recovers_on_retry(self):
        pool = WorkerPool(workers=2, task=double,
                          fault_plan=FaultPlan.sleep_on(0, 5.0), **FAST)
        results = run_batch(pool, [7, 8], deadline_s=0.2)
        assert results[0].ok and results[0].value == 14
        assert results[0].attempts == 2
        assert results[1].ok
        assert pool.counters["deadline_kills"] == 1

    def test_deadline_exhausted_surfaces_without_stalling(self):
        pool = WorkerPool(workers=2, task=double, max_retries=1,
                          fault_plan=FaultPlan.sleep_on(
                              0, 5.0, attempts=PERSISTENT), **FAST)
        results = run_batch(pool, [1, 2, 3, 4], deadline_s=0.15)
        assert results[0].kind == "deadline"
        assert isinstance(results[0].error, JobDeadlineError)
        assert "deadline" in str(results[0].error)
        assert [r.value for r in results[1:]] == [4, 6, 8]
        assert pool.counters["deadline_kills"] == 2
        assert pool.counters["jobs_deadline"] == 1

    def test_no_respawn_budget_fails_pending_jobs(self):
        pool = WorkerPool(workers=1, task=double, max_respawns=0,
                          fault_plan=FaultPlan.crash_on(
                              0, attempts=PERSISTENT), **FAST)
        results = run_batch(pool, [1])
        assert results[0].kind == "crash"
        assert "no live workers" in str(results[0].error) \
            or "lost its worker" in str(results[0].error)

    def test_sequence_numbers_span_batches(self):
        # The fault targets job seq 2 — the first job of the *second*
        # batch — proving plans key on pool-lifetime sequence numbers.
        pool = WorkerPool(workers=1, task=double,
                          fault_plan=FaultPlan.crash_on(2), **FAST)
        with pool:
            first = pool.run_batch([1, 2])
            second = pool.run_batch([3, 4])
        assert all(r.ok for r in first) and first[0].attempts == 1
        assert second[0].ok and second[0].attempts == 2

    def test_snapshot_shape_and_counters(self):
        pool = WorkerPool(workers=2, task=double, **FAST)
        with pool:
            pool.run_batch([1, 2, 3])
            snap = pool.snapshot()
        assert snap["workers"] == 2
        assert snap["alive"] == 2
        assert snap["started"] is True
        assert snap["counters"]["jobs_submitted"] == 3
        assert len(snap["per_worker"]) == 2
        for worker in snap["per_worker"]:
            assert {"slot", "pid", "alive", "busy", "retired", "jobs_ok",
                    "jobs_err", "deaths", "heartbeat_age_s"} <= set(worker)

    def test_shutdown_is_idempotent_and_closes_the_pool(self):
        pool = WorkerPool(workers=1, task=double, **FAST)
        pool.ensure_started()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(WorkerPoolUnavailable, match="shut down"):
            pool.run_batch([1])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)


# ----------------------------------------------------------------------
# the allocation path: faults must never change results

IR = """func axpy(%p0, %p1) -> value {
entry:
  %acc = 0
  jump loop
loop:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %acc = add %acc, %s
  %c = cmplt %acc, %p1
  branch %c, done, loop
done:
  ret %acc
}
"""


def module_ir(n: int = 3) -> str:
    return "\n".join(IR.replace("axpy", f"axpy{i}") for i in range(n))


def alloc_fingerprint(run) -> tuple:
    return (render_allocation(run), vars(run.stats), run.cycles.total)


class TestAllocationUnderFaults:
    @pytest.fixture
    def prepared(self):
        machine = make_machine(8)
        return prepare_module(parse_module(module_ir()), machine), machine

    def serial(self, prepared, machine):
        return allocate_module(prepared, machine,
                               ALLOCATOR_FACTORIES["full"]())

    def test_crash_recovery_is_byte_identical(self, prepared):
        prepared, machine = prepared
        want = alloc_fingerprint(self.serial(prepared, machine))
        with WorkerPool(workers=4, fault_plan=FaultPlan.crash_on(1),
                        **FAST) as pool:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # no fallback happened
                got = allocate_module(
                    prepared, machine, ALLOCATOR_FACTORIES["full"](),
                    AllocationOptions(jobs=4), pool=pool)
            assert pool.counters["crashes"] >= 1
        assert alloc_fingerprint(got) == want

    def test_retries_exhausted_falls_back_serially(self, prepared):
        prepared, machine = prepared
        want = alloc_fingerprint(self.serial(prepared, machine))
        with WorkerPool(workers=2, max_retries=0,
                        fault_plan=FaultPlan.crash_on(
                            0, attempts=PERSISTENT), **FAST) as pool:
            with pytest.warns(RuntimeWarning, match="gave up on 'axpy0'"):
                got = allocate_module(
                    prepared, machine, ALLOCATOR_FACTORIES["full"](),
                    AllocationOptions(jobs=2), pool=pool)
        assert alloc_fingerprint(got) == want

    def test_worker_task_error_propagates(self, prepared):
        prepared, machine = prepared
        with WorkerPool(workers=2, fault_plan=FaultPlan.poison(0),
                        **FAST) as pool:
            with pytest.raises(RuntimeError, match="injected fault"):
                allocate_module(prepared, machine,
                                ALLOCATOR_FACTORIES["full"](),
                                AllocationOptions(jobs=2), pool=pool)

    def test_deadline_exhausted_raises_for_the_caller(self, prepared):
        prepared, machine = prepared
        plan = FaultPlan.sleep_on(0, 5.0, attempts=PERSISTENT)
        with WorkerPool(workers=2, max_retries=0, fault_plan=plan,
                        **FAST) as pool:
            with pytest.raises(JobDeadlineError):
                allocate_module(prepared, machine,
                                ALLOCATOR_FACTORIES["full"](),
                                AllocationOptions(jobs=2, deadline_ms=150),
                                pool=pool)

    def test_allocation_error_crosses_the_process_boundary(self):
        # A genuinely unallocatable function (peak no-spill pressure
        # over k) must raise the same AllocationError from a worker as
        # it does serially — error-kind results re-raise, not retry.
        from repro.workloads.generator import generate_function
        from repro.workloads.profiles import BenchmarkProfile

        profile = BenchmarkProfile(name="press", stmts=14, int_pool=8,
                                   float_pool=2, call_prob=0.3,
                                   branch_prob=0.2, paired_prob=0.6,
                                   load_prob=0.4, store_prob=0.2,
                                   max_params=1, max_call_args=1)
        machine = make_machine(2)  # one parameter register only
        module = parse_module("""func fine(%p0) -> value {
entry:
  %x = load [%p0+0]
  %y = add %x, 1
  ret %y
}
""")
        module.add(generate_function("press", profile, seed=0))
        prepared = prepare_module(module, machine)
        with WorkerPool(workers=2, **FAST) as pool:
            with pytest.raises(AllocationError,
                               match="pressure cannot be met"):
                allocate_module(prepared, machine,
                                ALLOCATOR_FACTORIES["chaitin"](),
                                AllocationOptions(jobs=2), pool=pool)


class TestSchedulerWithPool:
    def run_request(self, scheduler, request):
        future = scheduler.submit(request)
        while not future.done():
            scheduler.run_once()
        return future.result()

    def request(self, **overrides):
        base = dict(id="pool", ir=module_ir(), allocator="full",
                    machine=MachineSpec(regs=8))
        base.update(overrides)
        return AllocationRequest(**base)

    def serial_digest(self):
        scheduler = Scheduler(cache=None)
        try:
            return self.run_request(scheduler, self.request()).result_digest
        finally:
            scheduler.stop()

    def test_pooled_scheduler_matches_serial_digest(self):
        want = self.serial_digest()
        scheduler = Scheduler(cache=ResultCache(),
                              options=AllocationOptions(jobs=2))
        try:
            response = self.run_request(scheduler, self.request())
            assert response.ok and not response.degraded
            assert response.result_digest == want
        finally:
            scheduler.stop()

    def test_worker_crash_mid_batch_still_matches_serial(self):
        want = self.serial_digest()
        scheduler = Scheduler(cache=ResultCache(),
                              options=AllocationOptions(jobs=2),
                              fault_plan=FaultPlan.crash_on(0))
        try:
            response = self.run_request(scheduler, self.request())
            assert response.ok and not response.degraded
            assert response.result_digest == want
            pool_stats = scheduler.metrics.snapshot()["worker_pool"]
            assert pool_stats["counters"]["crashes"] >= 1
            assert pool_stats["counters"]["retries"] >= 1
            assert len(pool_stats["per_worker"]) == 2
        finally:
            scheduler.stop()

    def test_worker_deadline_kill_degrades_gracefully(self):
        plan = FaultPlan({seq: FaultSpec("sleep", sleep_s=5.0,
                                         attempts=PERSISTENT)
                          for seq in range(3)})
        scheduler = Scheduler(cache=ResultCache(),
                              options=AllocationOptions(jobs=2),
                              fault_plan=plan)
        try:
            request = self.request(
                options=AllocationOptions(deadline_ms=150))
            response = self.run_request(scheduler, request)
            # the client still gets a real allocation, one rung down
            assert response.ok and response.degraded
            assert response.effective_allocator == degrade_for("full")
            assert "$r" in response.code
            counters = scheduler.metrics.counters
            assert counters["worker_deadline_kills"] == 1
            assert counters["deadline_misses"] >= 1
        finally:
            scheduler.stop()

    def test_serve_jobs_survives_worker_kill_byte_identically(self):
        # The acceptance scenario end-to-end: a TCP client submits to a
        # --jobs 2 server whose pool loses a worker mid-batch; the bytes
        # on the wire equal the no-fault server's bytes.
        from repro.service import ServerThread, ServiceClient

        def serve_and_collect(fault_plan):
            scheduler = Scheduler(cache=ResultCache(),
                                  options=AllocationOptions(jobs=2),
                                  fault_plan=fault_plan)
            thread = ServerThread(scheduler)
            host, port = thread.start()
            try:
                client = ServiceClient(host, port, timeout=120.0)
                return client.allocate(self.request())
            finally:
                thread.stop()

        clean = serve_and_collect(None)
        faulted = serve_and_collect(FaultPlan.crash_on(1))
        assert clean.ok and faulted.ok
        assert faulted.result_digest == clean.result_digest
        assert faulted.code == clean.code
