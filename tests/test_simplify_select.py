"""Simplification (both modes), spill choice, and the select phase."""

import pytest

from repro.analysis.interference import build_interference
from repro.errors import AllocationError
from repro.ir.builder import IRBuilder
from repro.ir.values import Const, RegClass, VReg
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.select import order_colors, select
from repro.regalloc.simplify import choose_spill_candidate, simplify
from repro.target.presets import figure7_machine, make_machine


def clique_function(n: int):
    """n values all simultaneously live (a clique in the graph)."""
    b = IRBuilder("clique", n_params=0)
    values = [b.const(i) for i in range(n)]
    acc = values[0]
    for v in values[1:]:
        acc = b.add(acc, v)
    b.ret(acc)
    return b.finish(), values


def graph_for(func, machine, rclass=RegClass.INT, costs=None):
    ig = build_interference(func)
    return build_alloc_graph(ig, machine, rclass, costs)


class TestSimplify:
    def test_colorable_graph_never_marks_spills(self):
        func, _ = clique_function(3)
        graph = graph_for(func, figure7_machine())
        result = simplify(graph, optimistic=False)
        assert not result.spilled
        assert not graph.active

    def test_chaitin_marks_definite_spill(self):
        func, values = clique_function(5)
        graph = graph_for(func, figure7_machine())  # K = 3
        result = simplify(graph, optimistic=False)
        assert result.spilled
        assert not result.optimistic

    def test_optimistic_pushes_instead(self):
        func, values = clique_function(5)
        graph = graph_for(func, figure7_machine())
        result = simplify(graph, optimistic=True)
        assert not result.spilled
        assert result.optimistic
        assert len(result.stack) == len(set(result.stack))

    def test_stack_contains_every_node(self):
        func, _ = clique_function(4)
        graph = graph_for(func, figure7_machine())
        nodes = set(graph.active)
        result = simplify(graph, optimistic=True)
        assert set(result.stack) == nodes

    def test_select_order_reverses_stack(self):
        func, _ = clique_function(3)
        graph = graph_for(func, figure7_machine())
        result = simplify(graph)
        assert result.select_order == list(reversed(result.stack))


class TestSpillCandidate:
    def test_min_cost_per_degree(self):
        func, values = clique_function(4)
        costs = {v: 100.0 for v in values}
        cheap = values[2]
        costs[cheap] = 1.0
        graph = graph_for(func, figure7_machine(), costs=costs)
        # restrict to the original pool values present in the graph
        pool = [v for v in values if v in graph.active]
        assert choose_spill_candidate(graph, pool) == cheap

    def test_no_spill_nodes_never_chosen(self):
        func, values = clique_function(4)
        graph = graph_for(func, figure7_machine())
        for node in list(graph.active):
            graph.spill_costs[node] = float("inf")
        object.__setattr__  # silence lint; we use real no-spill below
        with pytest.raises(AllocationError):
            # all infinite -> no candidate
            choose_spill_candidate(graph, graph.active)


class TestOrderColors:
    def test_nonvolatile_first(self):
        machine = make_machine(8)
        regfile = machine.file(RegClass.INT)
        ordered = order_colors(regfile.regs, regfile, "nonvolatile_first")
        assert not regfile.is_volatile(ordered[0])
        assert regfile.is_volatile(ordered[-1])

    def test_volatile_first(self):
        machine = make_machine(8)
        regfile = machine.file(RegClass.INT)
        ordered = order_colors(regfile.regs, regfile, "volatile_first")
        assert regfile.is_volatile(ordered[0])

    def test_index_order(self):
        machine = make_machine(8)
        regfile = machine.file(RegClass.INT)
        ordered = order_colors(regfile.regs, regfile, "index")
        assert [r.index for r in ordered] == list(range(8))

    def test_unknown_policy(self):
        machine = make_machine(8)
        regfile = machine.file(RegClass.INT)
        with pytest.raises(AllocationError):
            order_colors(regfile.regs, regfile, "nope")


class TestSelect:
    def test_neighbors_get_distinct_colors(self):
        func, _ = clique_function(3)
        machine = figure7_machine()
        graph = graph_for(func, machine)
        result = simplify(graph)
        colored = select(graph, result.select_order,
                         machine.file(RegClass.INT))
        values = [v for v in colored.assignment]
        for i, a in enumerate(values):
            for b_ in values[i + 1:]:
                if graph.interferes(a, b_):
                    assert colored.assignment[a] != colored.assignment[b_]

    def test_optimistic_failure_spills(self):
        func, _ = clique_function(5)
        machine = figure7_machine()
        graph = graph_for(func, machine)
        result = simplify(graph, optimistic=True)
        colored = select(graph, result.select_order,
                         machine.file(RegClass.INT),
                         optimistic_nodes=result.optimistic)
        assert colored.spilled
        assert colored.spilled <= result.optimistic

    def test_biased_coloring_hits_copy(self):
        b = IRBuilder("f", n_params=0)
        x = b.const(1)
        blocker = b.const(2)
        y = b.move(x)          # copy-related, x dead after
        z = b.add(y, blocker)
        b.ret(z)
        func = b.finish()
        machine = make_machine(8)
        graph = graph_for(func, machine)
        result = simplify(graph)
        colored = select(graph, result.select_order,
                         machine.file(RegClass.INT), biased=True)
        assert colored.assignment[x] == colored.assignment[y]
        assert colored.biased_hits >= 1

    def test_non_optimistic_failure_raises(self):
        func, _ = clique_function(5)
        machine = figure7_machine()
        graph = graph_for(func, machine)
        result = simplify(graph, optimistic=True)
        with pytest.raises(AllocationError):
            select(graph, result.select_order,
                   machine.file(RegClass.INT), optimistic_nodes=set())
