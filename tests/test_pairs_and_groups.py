"""Paired-load candidate detection and register-group semantics."""

from repro.core.pairs import WORD_SIZE, find_paired_loads
from repro.core.rpg import RegGroup
from repro.ir.builder import IRBuilder
from repro.ir.values import PReg, RegClass


def loads(b, base, *offsets, width="word", rclass=RegClass.INT):
    return [b.load(base, off, width=width, rclass=rclass)
            for off in offsets]


class TestPairDetection:
    def test_adjacent_offsets_pair(self):
        b = IRBuilder("f", n_params=1)
        lo, hi = loads(b, b.param(0), 0, WORD_SIZE)
        b.ret(b.add(lo, hi))
        pairs = find_paired_loads(b.finish())
        assert len(pairs) == 1
        assert pairs[0].dsts() == (lo, hi)

    def test_gap_blocks_pairing(self):
        b = IRBuilder("f", n_params=1)
        lo, hi = loads(b, b.param(0), 0, 2 * WORD_SIZE)
        b.ret(b.add(lo, hi))
        assert not find_paired_loads(b.finish())

    def test_different_bases_block_pairing(self):
        b = IRBuilder("f", n_params=2)
        x = b.load(b.param(0), 0)
        y = b.load(b.param(1), WORD_SIZE)
        b.ret(b.add(x, y))
        assert not find_paired_loads(b.finish())

    def test_intervening_instruction_blocks_pairing(self):
        b = IRBuilder("f", n_params=1)
        x = b.load(b.param(0), 0)
        b.const(1)
        y = b.load(b.param(0), WORD_SIZE)
        b.ret(b.add(x, y))
        assert not find_paired_loads(b.finish())

    def test_byte_loads_never_pair(self):
        b = IRBuilder("f", n_params=1)
        x, y = loads(b, b.param(0), 0, WORD_SIZE, width="byte")
        b.ret(b.add(x, y))
        assert not find_paired_loads(b.finish())

    def test_first_load_clobbering_base_blocks(self):
        b = IRBuilder("f", n_params=1)
        base = b.move(b.param(0))
        x = b.load(base, 0, dst=base)       # overwrites the base
        y = b.load(base, WORD_SIZE)
        b.ret(b.add(x, y))
        assert not find_paired_loads(b.finish())

    def test_float_pairs_detected(self):
        b = IRBuilder("f", n_params=1)
        x, y = loads(b, b.param(0), 0, WORD_SIZE, rclass=RegClass.FLOAT)
        s = b.binop("fadd", x, y)
        t = b.unary("ftoi", s, rclass=RegClass.INT)
        b.ret(t)
        assert len(find_paired_loads(b.finish())) == 1

    def test_mixed_class_destinations_block(self):
        b = IRBuilder("f", n_params=1)
        x = b.load(b.param(0), 0)
        y = b.load(b.param(0), WORD_SIZE, rclass=RegClass.FLOAT)
        z = b.unary("ftoi", y, rclass=RegClass.INT)
        b.ret(b.add(x, z))
        assert not find_paired_loads(b.finish())

    def test_each_load_in_at_most_one_pair(self):
        b = IRBuilder("f", n_params=1)
        a, c, d = loads(b, b.param(0), 0, WORD_SIZE, 2 * WORD_SIZE)
        b.ret(b.add(b.add(a, c), d))
        pairs = find_paired_loads(b.finish())
        assert len(pairs) == 1  # (a, c); d is not re-paired with c


class TestRegGroup:
    def test_str(self):
        group = RegGroup("volatile", RegClass.INT,
                         frozenset({PReg(0), PReg(1)}))
        assert str(group) == "<volatile/int>"

    def test_hashable_and_equal_by_value(self):
        regs = frozenset({PReg(0)})
        a = RegGroup("g", RegClass.INT, regs)
        b_ = RegGroup("g", RegClass.INT, regs)
        assert a == b_ and len({a, b_}) == 1
