"""DOT export of the analysis graphs."""

from repro.analysis.interference import build_interference
from repro.analysis.renumber import renumber
from repro.cfg.analysis import build_cfg
from repro.core.costs import CostModel
from repro.core.cpg import build_cpg
from repro.core.prefs import build_rpg
from repro.ir.values import RegClass
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.simplify import simplify
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine
from repro.viz import cfg_to_dot, cpg_to_dot, interference_to_dot, rpg_to_dot
from repro.workloads.figures import figure7_function

from conftest import build_diamond


def figure7_pieces():
    machine = figure7_machine()
    func = figure7_function()
    lower_function(func, machine)
    renumber(func)
    costs = CostModel(func, machine)
    rpg = build_rpg(func, machine, costs)
    ig = build_interference(func)
    graph = build_alloc_graph(ig, machine, RegClass.INT)
    wig = graph.snapshot_active_adjacency()
    cpg = build_cpg(graph, wig, simplify(graph, optimistic=True))
    return func, ig, rpg, cpg


class TestDotExports:
    def test_cfg_dot(self):
        dot = cfg_to_dot(build_cfg(build_diamond()))
        assert dot.startswith("digraph cfg {") and dot.endswith("}")
        assert '"entry" -> "then";' in dot
        assert '"entry" [peripheries=2];' in dot

    def test_interference_dot_undirected_and_deduped(self):
        _, ig, _, _ = figure7_pieces()
        dot = interference_to_dot(ig)
        assert dot.startswith("graph interference {")
        # undirected edges are emitted once per pair
        lines = [l for l in dot.splitlines() if " -- " in l
                 and "dashed" not in l]
        assert len(lines) == len(set(lines))
        assert "style=dashed" in dot  # the copy relations

    def test_rpg_dot_carries_strengths(self):
        _, _, rpg, _ = figure7_pieces()
        dot = rpg_to_dot(rpg)
        assert "coalesce" in dot
        assert "sequential" in dot
        assert "vol:40, n-vol:38" in dot      # the paper's v3 edge
        assert "shape=octagon" in dot          # register-class groups

    def test_cpg_dot_has_top_and_bottom(self):
        _, _, _, cpg = figure7_pieces()
        dot = cpg_to_dot(cpg)
        assert '"top"' in dot and '"bottom"' in dot
        assert dot.count("->") >= 5

    def test_dot_is_parseable_shape(self):
        # cheap structural sanity: braces balance, all edges quoted
        for dot in (
            cfg_to_dot(build_cfg(build_diamond())),
            cpg_to_dot(figure7_pieces()[3]),
        ):
            assert dot.count("{") == dot.count("}")
            for line in dot.splitlines():
                if "->" in line or " -- " in line:
                    assert line.count('"') % 2 == 0
