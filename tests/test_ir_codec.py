"""The binary IR codec: round-trips, digest stability, corruption.

The codec's contract has three legs, each load-bearing for the wire
path built on it:

* **round-trip exactness** — ``decode(encode(f))`` prints byte-
  identically to ``f`` for every IR form the dispatch path ships
  (raw generated, prepared, renumbered, and post-spill functions with
  physical registers and spill instructions),
* **digest stability** — equal IR encodes to equal bytes, so
  ``sha256(encode(f))`` is a content identity (clones share digests;
  the pinned hex values below freeze the v1 format: any byte-level
  format change must bump ``CODEC_VERSION``, not slide silently), and
* **corruption safety** — a truncated or bit-flipped blob raises
  :class:`~repro.errors.CodecError` (a :class:`ServiceError`), never
  yields garbage IR.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.renumber import renumber
from repro.errors import CodecError, ReproError, ServiceError
from repro.ir.clone import clone_function
from repro.ir.codec import (
    CODEC_VERSION,
    decode_function,
    encode_function,
    function_digest,
    module_digest,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import ConstInst
from repro.ir.printer import print_function
from repro.ir.values import VReg
from repro.pipeline import prepare_function
from repro.regalloc import ChaitinAllocator, allocate_function
from repro.target.presets import make_machine
from repro.workloads.figures import figure7_function
from repro.workloads.generator import generate_function, generate_module
from repro.workloads.profiles import BenchmarkProfile

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("codec"),
    stmts=st.integers(3, 12),
    int_pool=st.integers(3, 8),
    float_pool=st.integers(0, 3),
    call_prob=st.floats(0.0, 0.3),
    branch_prob=st.floats(0.0, 0.3),
    loop_prob=st.floats(0.0, 0.25),
    max_loop_depth=st.integers(1, 2),
    copy_prob=st.floats(0.0, 0.3),
    paired_prob=st.floats(0.0, 0.5),
    byte_prob=st.floats(0.0, 0.4),
    load_prob=st.floats(0.0, 0.3),
    store_prob=st.floats(0.0, 0.15),
    max_params=st.integers(1, 2),
    max_call_args=st.integers(1, 2),
)


def assert_roundtrip(func) -> bytes:
    blob = encode_function(func)
    decoded = decode_function(blob)
    assert print_function(decoded) == print_function(func)
    # decode -> encode is a fixpoint: the blob is canonical.
    assert encode_function(decoded) == blob
    return blob


class TestRoundTrip:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_generated_function(self, profile, seed):
        assert_roundtrip(generate_function("codec", profile, seed))

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_prepared_and_renumbered(self, profile, seed):
        func = generate_function("codec", profile, seed)
        prepared = prepare_function(clone_function(func), make_machine(8))
        assert_roundtrip(prepared)
        renumber(prepared)
        assert_roundtrip(prepared)

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 2_000))
    def test_spill_round_output(self, profile, seed):
        """Allocated functions — physical registers, spill loads and
        stores, slot numbering — round-trip too (tiny K forces
        spills)."""
        machine = make_machine(4)
        func = prepare_function(
            generate_function("codec", profile, seed), machine)
        try:
            allocate_function(func, machine, ChaitinAllocator())
        except ReproError:
            # Unallocatable under spill-everywhere at K=4: the input
            # form was still exercised by the other round-trip tests.
            return
        assert_roundtrip(func)

    def test_const_types_survive(self):
        """``Const(1)`` and ``Const(1.0)`` compare equal in Python but
        are distinct IR; the codec must keep them apart."""
        func = Function("consts", params=[])
        block = BasicBlock("entry")
        block.instrs.append(ConstInst(VReg(0), 1))
        block.instrs.append(ConstInst(VReg(1), 1.0))
        func.blocks.append(block)
        func.next_vreg_id = 2
        decoded = decode_function(encode_function(func))
        values = [i.value for b in decoded.blocks for i in b.instrs]
        assert [type(v) for v in values] == [int, float]

    def test_bool_const_rejected(self):
        func = Function("boolean", params=[])
        block = BasicBlock("entry")
        block.instrs.append(ConstInst(VReg(0), True))
        func.blocks.append(block)
        with pytest.raises(CodecError):
            encode_function(func)


class TestDigests:
    # Frozen v1-format digests: a byte-level encoding change must bump
    # CODEC_VERSION (and re-pin), never drift silently under digests
    # already used as cache keys.
    PINNED = {
        "figure7": ("65bdd4d9af68744263298ff915332558"
                    "dc6ee710187b3f88d739c9081988ca4e"),
        "module_2002": ("7b316535c90ef347de6cc4f96b5697a5"
                        "2f82d9a7fba0a43e9c41ce0a5e59bd70"),
        "prepared_f0": ("359249c6647e99c9c7c7dd05362f690e"
                        "81efd3355c501a82b1325ebfb6799d19"),
    }

    @staticmethod
    def pin_module():
        profile = BenchmarkProfile(
            name="pin", n_functions=4, stmts=6, int_pool=5,
            call_prob=0.2, branch_prob=0.2, loop_prob=0.1,
            max_loop_depth=1)
        return generate_module(profile, seed=2002)

    def test_version_is_one(self):
        assert CODEC_VERSION == 1

    def test_pinned_figure7(self):
        assert function_digest(figure7_function()) == \
            self.PINNED["figure7"]

    def test_pinned_module(self):
        assert module_digest(self.pin_module()) == \
            self.PINNED["module_2002"]

    def test_pinned_prepared(self):
        func = prepare_function(
            clone_function(self.pin_module().functions[0]),
            make_machine(8))
        assert function_digest(func) == self.PINNED["prepared_f0"]

    def test_clone_shares_digest(self):
        func = figure7_function()
        assert function_digest(clone_function(func)) == \
            function_digest(func)

    def test_rename_changes_module_digest(self):
        module = self.pin_module()
        module.functions[0].name = "renamed"
        assert module_digest(module) != self.PINNED["module_2002"]


class TestCorruption:
    def blob(self) -> bytes:
        return encode_function(figure7_function())

    def test_codec_error_is_service_error(self):
        assert issubclass(CodecError, ServiceError)

    def test_every_truncation_rejected(self):
        blob = self.blob()
        for cut in range(len(blob)):
            with pytest.raises(CodecError):
                decode_function(blob[:cut])

    def test_every_byte_flip_rejected_or_exact(self):
        """Any single-byte corruption either raises CodecError (the
        crc32 net) — it must never surface a different function."""
        blob = self.blob()
        for pos in range(len(blob)):
            bad = bytearray(blob)
            bad[pos] ^= 0xFF
            with pytest.raises(CodecError):
                decode_function(bytes(bad))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_function(self.blob() + b"\x00")

    def test_wrong_magic_and_version(self):
        blob = self.blob()
        with pytest.raises(CodecError):
            decode_function(b"XXXX" + blob[4:])
        with pytest.raises(CodecError):
            decode_function(blob[:4] + bytes([CODEC_VERSION + 1])
                            + blob[5:])

    def test_not_even_a_header(self):
        for junk in (b"", b"R", b"RIRC", pickle.dumps(object())[:8]):
            with pytest.raises(CodecError):
                decode_function(junk)
