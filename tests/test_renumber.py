"""Renumbering into webs: splitting, preservation, statistics."""

import pytest

from repro.analysis.renumber import renumber
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function
from repro.ir.validate import validate_function
from repro.ir.values import Const
from repro.sim.interp import run_function
from repro.sim.ops import Memory

from conftest import build_counted_loop, build_diamond, build_straightline


def build_two_webs():
    """One variable with two disjoint def-use regions."""
    b = IRBuilder("twowebs", n_params=2)
    v = b.move(b.param(0))
    first = b.add(v, Const(1))          # last use of web 1
    b.move(b.param(1), dst=v)           # web 2 starts fresh
    second = b.add(v, Const(2))
    total = b.add(first, second)
    b.ret(total)
    return b.finish(), v


class TestWebSplitting:
    def test_disjoint_webs_split(self):
        func, v = build_two_webs()
        result = renumber(func)
        assert result.split_counts.get(v) == 2

    def test_split_preserves_semantics(self):
        func, _ = build_two_webs()
        before = clone_function(func)
        renumber(func)
        validate_function(func)
        args = [10, 20]
        ref = run_function(before, args, memory=Memory())
        got = run_function(func, args, memory=Memory())
        assert ref.value == got.value

    def test_loop_variable_is_one_web(self):
        func = build_counted_loop()
        # The counter's defs (init + increment) reach the same uses
        # around the back edge: one web.
        result = renumber(func)
        assert all(count == 1 for count in result.split_counts.values())

    def test_all_registers_renamed_fresh(self):
        func = build_diamond()
        old = func.vregs()
        renumber(func)
        assert not (func.vregs() & old)


class TestWebStatistics:
    def test_def_use_counts(self):
        func = build_straightline()
        result = renumber(func)
        by_reg = {w.reg: w for w in result.webs}
        for web in result.webs:
            assert web.n_defs >= 1 or web.reg in func.params
        # the move's destination web: one def, one use (the ret)
        assert any(w.n_defs == 1 and w.n_uses == 1 for w in result.webs)

    def test_no_spill_flag_propagates(self):
        b = IRBuilder("f", n_params=0)
        tmp = b.func.new_vreg(no_spill=True)
        b.const(1, dst=tmp)
        b.ret(tmp)
        func = b.finish()
        result = renumber(func)
        (web,) = [w for w in result.webs if w.original == tmp]
        assert web.reg.no_spill


class TestRejections:
    def test_phis_rejected(self):
        func = build_diamond()
        from repro.ssa.construct import to_ssa

        to_ssa(func)
        with pytest.raises(ValueError):
            renumber(func)


class TestInterplayWithSpills:
    def test_renumber_after_spill_keeps_semantics(self):
        from repro.regalloc.spill import insert_spill_code

        func = build_diamond()
        before = clone_function(func)
        target = next(
            v for v in func.vregs() if v not in func.params
        )
        insert_spill_code(func, {target})
        renumber(func)
        ref = run_function(before, [1, 2], memory=Memory())
        got = run_function(func, [1, 2], memory=Memory())
        assert ref.value == got.value
