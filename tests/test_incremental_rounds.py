"""Incremental spill-round re-analysis: the patch must equal a rebuild.

The contract under test (see ``repro.analysis.incremental``): for every
spill round, patching the previous round's analyses through the
``SpillDelta`` yields *value-identical* liveness, interference (including
node insertion order), spill costs, and per-block summaries to a
from-scratch :func:`compute_round_analyses` — and therefore the whole
allocation (stats, assignment, cycle estimate) is byte-identical whether
``REPRO_INCREMENTAL_ROUNDS`` is on or off.
"""

from __future__ import annotations

import pytest

from repro.analysis.incremental import (
    apply_spill_delta,
    compare_analyses,
    incremental_mode,
)
from repro.analysis.renumber import renumber
from repro.ir.function import Module
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import CallCostAllocator, ChaitinAllocator
from repro.regalloc.base import (
    RoundContext,
    compute_round_analyses,
)
from repro.regalloc.spill import SpillDelta, insert_spill_code
from repro.target.presets import make_machine
from repro.workloads.spillstress import (
    spill_stress_function,
    spill_stress_module,
)


def small_stress_module(n_functions: int = 1) -> Module:
    """A spill-stress module scaled down for test runtime.

    On ``make_machine(8)`` each function still takes 4 allocation
    rounds (3 spill rounds), so every incremental code path runs.
    """
    module = Module("stress")
    for i in range(n_functions):
        module.add(spill_stress_function(
            f"f{i}", n_segments=9, hot_every=3, hot_pressure=12,
            cold_pressure=2, cold_chain=6, trips=2,
        ))
    return module


def drive_spill_rounds(func, machine, allocator, max_rounds=8):
    """Replay the Figure 8 loop, yielding (patched, fresh) per spill round.

    Mirrors :func:`allocate_function`'s sequencing: renumber, analyze,
    color, insert spill code, renumber again, then patch the previous
    analyses through the delta while also recomputing from scratch.
    """
    renumber(func)
    analyses = compute_round_analyses(func, collect_deltas=True)
    for round_index in range(max_rounds):
        ctx = RoundContext(
            func=func, machine=machine, cfg=analyses.cfg,
            loops=analyses.loops, liveness=analyses.liveness,
            ig=analyses.ig, spill_costs=analyses.spill_costs,
            round_index=round_index,
        )
        outcome = allocator.allocate_round(ctx)
        if not outcome.spilled:
            return
        report = insert_spill_code(func, outcome.spilled)
        ren = renumber(func, cfg=analyses.cfg)
        patched = analyses.apply_delta(func, report.delta, ren)
        fresh = compute_round_analyses(func, collect_deltas=True)
        yield patched, fresh
        analyses = fresh


class TestPatchEqualsRebuild:
    @pytest.mark.parametrize("allocator_cls",
                             [ChaitinAllocator, CallCostAllocator])
    def test_every_spill_round_value_identical(self, allocator_cls):
        machine = make_machine(8)
        module = prepare_module(small_stress_module(), machine)
        func = module.functions[0]
        rounds = 0
        for patched, fresh in drive_spill_rounds(
                func, machine, allocator_cls()):
            rounds += 1
            assert patched is not None, "patch bailed on a plain spill round"
            assert compare_analyses(patched, fresh) == []
        assert rounds >= 3, f"workload only forced {rounds} spill rounds"

    def test_patch_preserves_cfg_and_loops(self):
        machine = make_machine(8)
        module = prepare_module(small_stress_module(), machine)
        func = module.functions[0]
        renumber(func)
        analyses = compute_round_analyses(func, collect_deltas=True)
        ctx = RoundContext(
            func=func, machine=machine, cfg=analyses.cfg,
            loops=analyses.loops, liveness=analyses.liveness,
            ig=analyses.ig, spill_costs=analyses.spill_costs,
            round_index=0,
        )
        outcome = ChaitinAllocator().allocate_round(ctx)
        assert outcome.spilled
        report = insert_spill_code(func, outcome.spilled)
        ren = renumber(func, cfg=analyses.cfg)
        patched = analyses.apply_delta(func, report.delta, ren)
        assert patched is not None
        # Spill code is branch-free: the very same objects are reused.
        assert patched.cfg is analyses.cfg
        assert patched.loops is analyses.loops


class TestEndToEndIdentity:
    @pytest.mark.parametrize("allocator_cls",
                             [ChaitinAllocator, CallCostAllocator])
    def test_stats_assignment_cycles_identical(
            self, allocator_cls, monkeypatch):
        machine = make_machine(8)
        prepared = prepare_module(small_stress_module(2), machine)

        def run(mode):
            # No explicit options: from_env() re-reads the variable on
            # every call, so the monkeypatched mode takes effect.
            monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", mode)
            return allocate_module(prepared, machine, allocator_cls())

        on, off = run("1"), run("0")
        assert on.stats.rounds >= 3
        assert vars(on.stats) == vars(off.stats)
        for a, b in zip(on.results, off.results):
            assert a.assignment == b.assignment
        cyc = lambda c: {f: getattr(c, f) for f in c.__dataclass_fields__}
        assert cyc(on.cycles) == cyc(off.cycles)

    def test_validate_mode_runs_clean(self, monkeypatch):
        # validate recomputes from scratch every round and raises
        # AllocationError on any divergence from the patched analyses.
        monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", "validate")
        machine = make_machine(8)
        prepared = prepare_module(small_stress_module(), machine)
        result = allocate_module(prepared, machine, ChaitinAllocator())
        assert result.stats.rounds >= 3


class TestFallbacks:
    def test_bails_without_collected_summaries(self):
        machine = make_machine(8)
        module = prepare_module(small_stress_module(), machine)
        func = module.functions[0]
        ren = renumber(func)
        prev = compute_round_analyses(func, collect_deltas=False)
        assert prev.block_rows is None
        patched = apply_spill_delta(func, prev, SpillDelta(), ren)
        assert patched is None

    def test_mode_parsing(self, monkeypatch):
        for raw in ("0", "off", "false", "no", " OFF "):
            monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", raw)
            assert incremental_mode() == "off"
        monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", "validate")
        assert incremental_mode() == "validate"
        for raw in ("1", "on", "anything"):
            monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", raw)
            assert incremental_mode() == "on"
        monkeypatch.delenv("REPRO_INCREMENTAL_ROUNDS")
        assert incremental_mode() == "on"


class TestWorkloadShape:
    def test_spillstress_localizes_touched_blocks(self):
        # The workload exists to exercise the incremental path: spills
        # must stay confined to the hot segments, not smear across the
        # whole function.
        machine = make_machine(8)
        module = prepare_module(spill_stress_module(n_functions=1), machine)
        func = module.functions[0]
        renumber(func)
        analyses = compute_round_analyses(func, collect_deltas=True)
        ctx = RoundContext(
            func=func, machine=machine, cfg=analyses.cfg,
            loops=analyses.loops, liveness=analyses.liveness,
            ig=analyses.ig, spill_costs=analyses.spill_costs,
            round_index=0,
        )
        outcome = ChaitinAllocator().allocate_round(ctx)
        assert outcome.spilled
        report = insert_spill_code(func, outcome.spilled)
        touched = len(report.delta.touched_blocks)
        assert 0 < touched < len(func.blocks) / 3
