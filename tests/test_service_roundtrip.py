"""In-process server round trip: 50 mixed requests over TCP.

The acceptance contract of the service layer:

* non-degraded responses are byte-identical to a direct
  ``allocate_module`` run over the same prepared module;
* repeated submissions answer from the content-addressed cache
  (hit ratio > 0 in ``stats``);
* a past-deadline request degrades to a valid allocation
  (``degraded: true``) instead of erroring.
"""

import io

import pytest

from repro.ir.parser import parse_module
from repro.pipeline import allocate_module, prepare_module
from repro.service import (
    AllocationRequest,
    MachineSpec,
    ResultCache,
    Scheduler,
    ServerThread,
    ServiceClient,
    ServiceMetrics,
)
from repro.service.scheduler import ALLOCATOR_FACTORIES, render_allocation
from repro.service.server import serve_stdio
from repro.workloads import make_benchmark

IR_TEMPLATE = """func kernel{tag}(%p0, %p1) -> value {{
entry:
  %acc = {init}
  jump loop
loop:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %acc = add %acc, %s
  %c = cmplt %acc, %p1
  branch %c, done, loop
done:
  ret %acc
}}
"""


def sample_ir(tag: int) -> str:
    return IR_TEMPLATE.format(tag=tag, init=tag)


def direct_render(ir_or_bench, allocator: str, regs: int) -> str:
    """The reference: a direct pipeline run, rendered like the server."""
    machine = MachineSpec(regs=regs).build()
    if ir_or_bench.startswith("func"):
        module = parse_module(ir_or_bench)
    else:
        module = make_benchmark(ir_or_bench)
    prepared = prepare_module(module, machine)
    run = allocate_module(prepared, machine,
                          ALLOCATOR_FACTORIES[allocator]())
    return render_allocation(run)


def mixed_schedule() -> list:
    """50 requests: 5 IR modules x allocator rotation, heavy duplication,
    one benchmark source, one past-deadline."""
    allocators = ["full", "chaitin", "briggs", "only-coalescing"]
    requests = []
    for i in range(49):
        requests.append(AllocationRequest(
            id=f"mix-{i}",
            ir=sample_ir(i % 5),
            allocator=allocators[i % len(allocators)],
            machine=MachineSpec(regs=8),
        ))
    requests.append(AllocationRequest(
        id="late", ir=sample_ir(999), allocator="full",
        machine=MachineSpec(regs=8), deadline_s=0.0,
    ))
    return requests


@pytest.fixture(scope="module")
def server():
    scheduler = Scheduler(cache=ResultCache(max_entries=128),
                          metrics=ServiceMetrics(), max_queue=128)
    thread = ServerThread(scheduler)
    host, port = thread.start()
    yield host, port
    thread.stop()


class TestRoundTrip:
    def test_fifty_mixed_requests(self, server):
        host, port = server
        client = ServiceClient(host, port, timeout=120.0)
        requests = mixed_schedule()
        responses = [client.allocate(req) for req in requests]

        assert all(r.ok for r in responses)
        by_id = {r.id: r for r in responses}

        # the past-deadline request degraded but still allocated
        late = by_id["late"]
        assert late.degraded
        assert late.effective_allocator == "chaitin"
        assert "$r" in late.code
        assert late.code == direct_render(sample_ir(999), "chaitin", 8)

        # every non-degraded response is byte-identical to a direct run
        reference: dict = {}
        for req, resp in zip(requests, responses):
            if resp.degraded:
                continue
            key = (req.ir, req.allocator)
            if key not in reference:
                reference[key] = direct_render(req.ir, req.allocator, 8)
            assert resp.code == reference[key], resp.id
            assert resp.effective_allocator == req.allocator

        # duplicates hit the cache and return the same digest
        assert any(r.cached for r in responses)
        seen: dict = {}
        for req, resp in zip(requests, responses):
            key = (req.ir, req.allocator)
            if key in seen:
                assert resp.result_digest == seen[key]
            else:
                seen[key] = resp.result_digest

        stats = client.stats()
        metrics = stats["metrics"]
        assert metrics["cache_hit_ratio"] > 0
        assert metrics["counters"]["responses_ok"] >= 50
        assert metrics["counters"]["degraded_total"] == 1
        assert stats["cache"]["hits"] > 0

    def test_bench_source_round_trip(self, server):
        host, port = server
        client = ServiceClient(host, port, timeout=120.0)
        request = AllocationRequest(id="bench-1", bench="db",
                                    allocator="chaitin",
                                    machine=MachineSpec(regs=16))
        response = client.allocate(request)
        assert response.ok and not response.degraded
        assert response.code == direct_render("db", "chaitin", 16)

    def test_ping_and_malformed_line(self, server):
        import socket

        host, port = server
        assert ServiceClient(host, port).ping()
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = sock.recv(65536)
        assert b"malformed JSON" in reply

    def test_unknown_allocator_over_the_wire(self, server):
        host, port = server
        reply = ServiceClient(host, port).request({
            "type": "allocate", "id": "bad", "ir": sample_ir(0),
            "allocator": "linear-scan",
        })
        assert reply["ok"] is False
        assert "allocator" in reply["error"]


class TestStdioServer:
    def test_stdio_loop_speaks_the_same_protocol(self):
        scheduler = Scheduler(cache=ResultCache())
        scheduler.start()
        try:
            request = AllocationRequest(id="s1", ir=sample_ir(1),
                                        allocator="chaitin",
                                        machine=MachineSpec(regs=8))
            lines = [
                '{"type": "ping"}',
                request.to_json(),
                request.to_json(),  # cache hit
                '{"type": "stats"}',
                '{"type": "shutdown"}',
            ]
            out = io.StringIO()
            serve_stdio(scheduler, iter(lines), out)
        finally:
            scheduler.stop()
        import json

        replies = [json.loads(line) for line in
                   out.getvalue().splitlines()]
        assert replies[0]["type"] == "pong"
        assert replies[1]["ok"] and not replies[1]["cached"]
        assert replies[2]["ok"] and replies[2]["cached"]
        assert replies[1]["result_digest"] == replies[2]["result_digest"]
        assert replies[3]["metrics"]["cache_hit_ratio"] > 0
        assert replies[4]["type"] == "shutdown"
        assert replies[1]["code"] == direct_render(sample_ir(1),
                                                   "chaitin", 8)
