"""The priority-indexed simplify/select engine (REPRO_SELECT_INDEX).

Covers the PR-5 index structures directly — the degree-change hook, the
bucketed low-degree worklist, the lazy spill heap, the selector's lazy
max-heap ready queue — plus the escape-hatch parsing, the exact push
order pinned on known graphs, and validate-mode divergence detection.
The cross-engine decision-sequence identity over random programs lives
in tests/test_properties.py.
"""

import pytest

from repro.core import PreferenceDirectedAllocator
from repro.errors import AllocationError
from repro.ir.clone import clone_function
from repro.ir.values import RegClass, VReg
from repro.pipeline import prepare_function
from repro.regalloc import allocate_function
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.simplify import _tie_break, simplify
from repro.regalloc.worklist import (
    DegreeWorklist,
    LazyMaxHeap,
    parse_select_index,
    select_index_mode,
)
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile


def make_graph(k: int, edges, costs=None) -> tuple[AllocGraph, dict]:
    """A hand-built single-class coloring graph with exact adjacency."""
    graph = AllocGraph(rclass=RegClass.INT, k=k, colors=())
    nodes: dict[int, VReg] = {}

    def node(i: int) -> VReg:
        if i not in nodes:
            v = nodes[i] = VReg(i)
            graph.adj[v] = set()
            graph.active.add(v)
            graph.members[v] = {v}
            graph._degree[v] = 0
        return nodes[i]

    for a, b in edges:
        graph.add_edge(node(a), node(b))
    for i, cost in (costs or {}).items():
        graph.spill_costs[node(i)] = cost
    return graph, nodes


class TestModeParsing:
    @pytest.mark.parametrize("raw", ["0", "off", "false", "no", " OFF "])
    def test_off_spellings(self, raw):
        assert parse_select_index(raw) == "off"

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "", "anything"])
    def test_default_on(self, raw):
        assert parse_select_index(raw) == "on"

    def test_validate(self):
        assert parse_select_index("validate") == "validate"

    def test_env_controls_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SELECT_INDEX", "validate")
        assert select_index_mode() == "validate"
        monkeypatch.setenv("REPRO_SELECT_INDEX", "0")
        assert select_index_mode() == "off"
        monkeypatch.delenv("REPRO_SELECT_INDEX")
        assert select_index_mode() == "on"


class TestDegreeHook:
    def test_remove_notifies_each_active_neighbor(self):
        graph, n = make_graph(3, [(1, 2), (1, 3), (2, 3), (3, 4)])
        events = []
        graph.degree_listener = lambda node, deg: events.append((node, deg))
        graph.remove(n[3])
        assert sorted(events, key=lambda e: e[0].id) == [
            (n[1], 1), (n[2], 1), (n[4], 0),
        ]
        for node, deg in events:
            assert deg == graph.degree(node)

    def test_add_edge_notifies_both_endpoints(self):
        graph, n = make_graph(3, [(1, 2)])
        events = []
        graph.degree_listener = lambda node, deg: events.append((node, deg))
        graph.add_edge(n[1], VReg(9))  # inactive endpoint: no events
        assert events == []
        # A genuinely new active-active edge notifies both ends.
        graph2, m = make_graph(3, [(1, 2), (2, 3)])
        got = []
        graph2.degree_listener = lambda node, deg: got.append((node, deg))
        graph2.add_edge(m[1], m[3])
        assert sorted(got, key=lambda e: e[0].id) == [(m[1], 2), (m[3], 2)]

    def test_merge_notifies_degree_losses(self):
        # 1-2 move-partners, 3 interferes with both: merging 2 into 1
        # costs 3 one active neighbor.
        graph, n = make_graph(4, [(1, 3), (2, 3)])
        events = []
        graph.degree_listener = lambda node, deg: events.append((node, deg))
        graph.merge(n[1], n[2])
        assert (n[3], 1) in events
        assert graph.degree(n[3]) == 1

    def test_single_listener_enforced(self):
        graph, _ = make_graph(3, [(1, 2)])
        with DegreeWorklist(graph, _tie_break):
            with pytest.raises(AllocationError):
                DegreeWorklist(graph, _tie_break).attach()
        assert graph.degree_listener is None  # detached on exit


class TestDegreeWorklist:
    def test_initial_batch_is_sorted_low_nodes(self):
        graph, n = make_graph(3, [(1, 2), (3, 4)])  # all degree 1 < 3
        worklist = DegreeWorklist(graph, _tie_break)
        assert worklist.take_batch() == [n[1], n[2], n[3], n[4]]
        assert worklist.take_batch() == []  # pending cleared

    def test_crossing_enters_pending_exactly_once(self):
        # K=2; node 1 has degree 3 and sheds neighbors one at a time.
        graph, n = make_graph(2, [(1, 2), (1, 3), (1, 4),
                                  (2, 3), (2, 4), (3, 4)])
        with DegreeWorklist(graph, _tie_break) as worklist:
            assert worklist.take_batch() == []  # everyone degree 3
            graph.remove(n[4])  # all drop to 2: still significant
            assert worklist.take_batch() == []
            graph.remove(n[3])  # 1 and 2 cross to degree 1 == k-1
            assert worklist.take_batch() == [n[1], n[2]]
            graph.remove(n[2])  # 1 drops to 0: no second crossing
            assert worklist.take_batch() == []

    def test_spill_heap_orders_by_metric_then_tie(self):
        # K=1 keeps everyone significant.  metric = cost / degree.
        graph, n = make_graph(1, [(1, 2), (1, 3), (2, 3)],
                              costs={1: 8.0, 2: 2.0, 3: 8.0})
        with DegreeWorklist(graph, _tie_break) as worklist:
            assert worklist.pop_spill() is n[2]  # metric 1.0 vs 4.0

    def test_uniform_metric_ties_break_on_id(self):
        graph, n = make_graph(1, [(1, 2), (1, 3), (2, 3)],
                              costs={1: 4.0, 2: 4.0, 3: 4.0})
        with DegreeWorklist(graph, _tie_break) as worklist:
            assert worklist.pop_spill() is n[1]

    def test_degree_event_refreshes_metric(self):
        # Initially node 3 wins (cost 4.5 over degree 3 = 1.5 beats node
        # 2's 4.0/2 = 2.0); removing node 4 drops degree(3) to 2, so the
        # refreshed metric 2.25 loses to node 2 — the stale 1.5 entry
        # must be skipped, not served.
        graph, n = make_graph(1, [(2, 6), (2, 7), (3, 4), (3, 6), (3, 7)],
                              costs={2: 4.0, 3: 4.5,
                                     4: 100.0, 6: 100.0, 7: 100.0})
        with DegreeWorklist(graph, _tie_break) as worklist:
            graph.remove(n[4])
            assert worklist.pop_spill() is n[2]
            graph.remove(n[2])
            assert worklist.pop_spill() is n[3]

    def test_pop_spill_skips_stale_entries(self):
        graph, n = make_graph(1, [(1, 2)], costs={1: 1.0, 2: 2.0})
        with DegreeWorklist(graph, _tie_break) as worklist:
            graph.remove(n[1])  # best entry is now stale
            assert worklist.pop_spill() is n[2]

    def test_all_no_spill_reports_pressure_error(self):
        graph, n = make_graph(1, [(1, 2)],
                              costs={1: float("inf"), 2: float("inf")})
        worklist = DegreeWorklist(graph, _tie_break)
        with pytest.raises(AllocationError, match="pressure cannot be met"):
            worklist.pop_spill()

    def test_empty_graph_raises(self):
        graph, n = make_graph(3, [(1, 2)])
        worklist = DegreeWorklist(graph, _tie_break)
        graph.remove(n[1])
        graph.remove(n[2])
        with pytest.raises(AllocationError, match="no spill candidate"):
            worklist.pop_spill()


class TestLazyMaxHeap:
    def test_pops_max_key(self):
        heap = LazyMaxHeap()
        a, b, c = VReg(1), VReg(2), VReg(3)
        heap.push(a, (1.0, 0.0, -a.id))
        heap.push(b, (3.0, 0.0, -b.id))
        heap.push(c, (2.0, 0.0, -c.id))
        assert [heap.pop(), heap.pop(), heap.pop()] == [b, c, a]

    def test_refresh_supersedes(self):
        heap = LazyMaxHeap()
        a, b = VReg(1), VReg(2)
        heap.push(a, (5.0, 0.0, -a.id))
        heap.push(b, (1.0, 0.0, -b.id))
        heap.push(a, (0.0, 0.0, -a.id))  # refreshed: a now ranks last
        assert [heap.pop(), heap.pop()] == [b, a]

    def test_discard_and_membership(self):
        heap = LazyMaxHeap()
        a, b = VReg(1), VReg(2)
        heap.push(a, (2.0, 0.0, -a.id))
        heap.push(b, (1.0, 0.0, -b.id))
        assert a in heap and len(heap) == 2
        heap.discard(a)
        assert a not in heap and len(heap) == 1
        assert heap.pop() is b
        with pytest.raises(AllocationError):
            heap.pop()

    def test_ties_break_on_id_component(self):
        heap = LazyMaxHeap()
        a, b = VReg(1), VReg(2)
        heap.push(b, (1.0, 1.0, -b.id))
        heap.push(a, (1.0, 1.0, -a.id))
        assert heap.pop() is a  # max(-id) => lowest id first


class TestPushOrderPinned:
    """Satellite: the exact stack order on known graphs, all engines."""

    @pytest.mark.parametrize("mode", ["on", "off", "validate"])
    def test_low_batch_then_spill_then_crossers(self, mode):
        # K=3.  5/6 start low; the spill pick is the cheap-per-degree 4;
        # its removal drops 1/2/3 below K as one sorted batch.
        edges = [(5, 1), (6, 2),
                 (1, 2), (1, 3), (1, 4),
                 (2, 3), (2, 4), (3, 4)]
        graph, n = make_graph(3, edges,
                              costs={1: 6.0, 2: 6.0, 3: 6.0, 4: 3.0})
        result = simplify(graph, optimistic=True, index_mode=mode)
        assert result.stack == [n[5], n[6], n[4], n[1], n[2], n[3]]
        assert result.optimistic == {n[4]}
        assert not result.spilled

    @pytest.mark.parametrize("mode", ["on", "off", "validate"])
    def test_mid_batch_crosser_waits_for_next_batch(self, mode):
        # K=2.  The first batch is {3, 5}; removing 3 makes the
        # *smaller-id* node 2 low mid-batch, but batch semantics park it
        # for the next batch, so 5 still precedes 2 on the stack.
        edges = [(2, 1), (2, 3), (1, 4), (4, 5)]
        graph, n = make_graph(2, edges)
        result = simplify(graph, optimistic=True, index_mode=mode)
        assert result.stack == [n[3], n[5], n[2], n[4], n[1]]
        assert not result.optimistic

    def test_engines_agree_under_env(self, monkeypatch):
        edges = [(5, 1), (6, 2),
                 (1, 2), (1, 3), (1, 4),
                 (2, 3), (2, 4), (3, 4)]
        stacks = {}
        for mode in ("0", "1", "validate"):
            monkeypatch.setenv("REPRO_SELECT_INDEX", mode)
            graph, _ = make_graph(3, edges, costs={4: 3.0})
            stacks[mode] = simplify(graph, optimistic=True).stack
        assert stacks["0"] == stacks["1"] == stacks["validate"]


class TestValidateModeDivergence:
    def test_validate_catches_bad_batch(self, monkeypatch):
        graph, _ = make_graph(3, [(1, 2), (3, 4)])

        real_take = DegreeWorklist.take_batch

        def corrupted(self):
            return real_take(self)[1:]  # drop the first candidate

        monkeypatch.setattr(DegreeWorklist, "take_batch", corrupted)
        with pytest.raises(AllocationError, match="validation failed"):
            simplify(graph, optimistic=True, index_mode="validate")

    def test_validate_catches_bad_spill_pick(self, monkeypatch):
        graph, _ = make_graph(1, [(1, 2), (1, 3), (2, 3)],
                              costs={1: 3.0, 2: 6.0, 3: 9.0})

        real_pop = DegreeWorklist.pop_spill

        def corrupted(self):
            real_pop(self)  # discard the true pick
            return real_pop(self)

        monkeypatch.setattr(DegreeWorklist, "pop_spill", corrupted)
        with pytest.raises(AllocationError, match="validation failed"):
            simplify(graph, optimistic=True, index_mode="validate")


class TestSelectorReadyQueue:
    """End-to-end: the selector's heap agrees with its scan oracle."""

    PROFILE = BenchmarkProfile(
        name="selq", stmts=40, int_pool=12, call_prob=0.1,
        branch_prob=0.15, loop_prob=0.15, copy_prob=0.15,
        load_prob=0.2, store_prob=0.05,
        # K=4 machines only have two parameter registers
        max_params=2, max_call_args=2,
    )

    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("k", [4, 8])
    def test_trace_identical_across_engines(self, seed, k, monkeypatch):
        func = generate_function("selq", self.PROFILE, seed)
        machine = make_machine(k)
        traces = {}
        for mode in ("0", "validate"):
            monkeypatch.setenv("REPRO_SELECT_INDEX", mode)
            allocator = PreferenceDirectedAllocator(keep_trace=True)
            work = prepare_function(clone_function(func), machine)
            result = allocate_function(work, machine, allocator)
            traces[mode] = (allocator.last_trace.steps,
                            sorted((v.id, str(p)) for v, p in
                                   result.assignment.items()),
                            result.stats.spilled_webs)
        # validate mode already asserted pick-for-pick identity inside
        # the selector; this pins the externally visible sequence too.
        assert traces["0"] == traces["validate"]

    def test_validate_catches_corrupted_ready_heap(self, monkeypatch):
        func = generate_function("selq", self.PROFILE, 3)
        machine = make_machine(4)

        real_pop = LazyMaxHeap.pop

        def corrupted(self):
            first = real_pop(self)
            if len(self) == 0:
                return first
            second = real_pop(self)
            self.push(first, (float("inf"), 0.0, 0))
            return second

        monkeypatch.setenv("REPRO_SELECT_INDEX", "validate")
        monkeypatch.setattr(LazyMaxHeap, "pop", corrupted)
        work = prepare_function(clone_function(func), machine)
        with pytest.raises(AllocationError, match="validation failed"):
            allocate_function(work, machine, PreferenceDirectedAllocator())
