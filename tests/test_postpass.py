"""The aggressive post-coalescing extension (Section 6.1 suggestion)."""

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.pipeline import prepare_function
from repro.regalloc import allocate_function, verify_allocation
from repro.sim.cycles import estimate_cycles
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import high_pressure, make_machine
from repro.workloads import SPEC_PROFILES, generate_function

from conftest import build_call_heavy, build_paired_loads


def with_and_without(base, machine, config=None):
    f1, f2 = clone_function(base), clone_function(base)
    r1 = allocate_function(f1, machine,
                           PreferenceDirectedAllocator(config))
    r2 = allocate_function(
        f2, machine,
        PreferenceDirectedAllocator(config, name="post",
                                    post_coalesce=True),
    )
    return (f1, r1), (f2, r2)


class TestPostCoalesce:
    def test_never_eliminates_fewer_moves(self, machine16):
        for seed in range(8):
            base = prepare_function(
                generate_function("p", SPEC_PROFILES["jess"], seed),
                machine16,
            )
            (_, plain), (_, post) = with_and_without(base, machine16)
            assert post.stats.moves_eliminated >= \
                plain.stats.moves_eliminated

    def test_allocation_remains_valid_and_correct(self, machine16):
        for seed in range(8):
            raw = generate_function("p", SPEC_PROFILES["db"], seed)
            args = [64 * (i + 1) for i in range(len(raw.params))]
            want = run_function(clone_function(raw), args,
                                memory=Memory())
            base = prepare_function(raw, machine16)
            func = clone_function(base)
            allocate_function(
                func, machine16,
                PreferenceDirectedAllocator(post_coalesce=True),
            )
            verify_allocation(func, machine16)
            got = run_function(func, args, machine=machine16,
                               memory=Memory())
            assert got.value == want.value

    def test_does_not_break_paired_loads(self):
        machine = make_machine(8)
        base = prepare_function(build_paired_loads(), machine)
        (_, _), (func, _) = with_and_without(base, machine)
        assert estimate_cycles(func, machine).paired_loads_fused == 1

    def test_does_not_regress_caller_saves(self):
        machine = high_pressure()
        base = prepare_function(build_call_heavy(), machine)
        (f1, _), (f2, _) = with_and_without(base, machine)
        plain = estimate_cycles(f1, machine)
        post = estimate_cycles(f2, machine)
        # the economics guard: any recoloring's move gain covers its
        # placement loss, so total cycles cannot get worse
        assert post.total <= plain.total + 1e-9

    def test_works_in_only_coalescing_mode(self, machine16):
        base = prepare_function(
            generate_function("p", SPEC_PROFILES["javac"], 3), machine16
        )
        config = PreferenceConfig.only_coalescing()
        (_, plain), (_, post) = with_and_without(base, machine16, config)
        assert post.stats.moves_eliminated >= plain.stats.moves_eliminated
