"""The command-line interface."""

import io

import pytest

from repro.cli import ALLOCATOR_CHOICES, build_parser, main


@pytest.fixture
def sample_ir(tmp_path):
    path = tmp_path / "sample.ir"
    path.write_text("""func axpy(%p0, %p1) -> value {
entry:
  %acc = 0
  jump loop
loop:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %acc = add %acc, %s
  %c = cmplt %acc, %p1
  branch %c, done, loop
done:
  ret %acc
}
""")
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "quake"])

    def test_allocator_choices_complete(self):
        assert set(ALLOCATOR_CHOICES) == {
            "chaitin", "briggs", "iterated", "optimistic", "callcost",
            "priority", "only-coalescing", "full",
        }


class TestAlloc:
    def test_alloc_prints_physical_code(self, sample_ir):
        code, text = run_cli(["alloc", sample_ir, "--regs", "8"])
        assert code == 0
        assert "$r" in text
        assert "%x" not in text.split(";")[0]  # no vregs in the code
        assert "moves eliminated" in text
        assert "estimated cycles" in text

    @pytest.mark.parametrize("allocator", sorted(ALLOCATOR_CHOICES))
    def test_every_allocator_selectable(self, sample_ir, allocator):
        code, text = run_cli(
            ["alloc", sample_ir, "--allocator", allocator, "--regs", "8"]
        )
        assert code == 0 and "estimated cycles" in text


class TestCompare:
    def test_table_has_all_allocators(self, sample_ir):
        code, text = run_cli(["compare", sample_ir, "--regs", "8"])
        assert code == 0
        for name in ALLOCATOR_CHOICES:
            assert name in text


class TestBench:
    def test_bench_runs(self):
        code, text = run_cli(["bench", "jack", "--regs", "16"])
        assert code == 0
        assert "benchmark jack" in text
        assert "full" in text


class TestExample:
    def test_figure7_replay(self):
        code, text = run_cli(["example"])
        assert code == 0
        assert "Figure 7(a)" in text
        assert "Figure 7(h)" in text
        assert "moves eliminated 3/3" in text
        assert "paired loads fused 1" in text


class TestTargets:
    def test_describes_all_models(self):
        code, text = run_cli(["targets"])
        assert code == 0
        for label in ("high", "middle", "low"):
            assert label in text
        assert "volatile" in text
