"""The command-line interface."""

import io
import json

import pytest

from repro.cli import ALLOCATOR_CHOICES, build_parser, main


@pytest.fixture
def sample_ir(tmp_path):
    path = tmp_path / "sample.ir"
    path.write_text("""func axpy(%p0, %p1) -> value {
entry:
  %acc = 0
  jump loop
loop:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %acc = add %acc, %s
  %c = cmplt %acc, %p1
  branch %c, done, loop
done:
  ret %acc
}
""")
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "quake"])

    def test_allocator_choices_complete(self):
        assert set(ALLOCATOR_CHOICES) == {
            "chaitin", "briggs", "iterated", "optimistic", "callcost",
            "priority", "only-coalescing", "full",
        }


class TestAlloc:
    def test_alloc_prints_physical_code(self, sample_ir):
        code, text = run_cli(["alloc", sample_ir, "--regs", "8"])
        assert code == 0
        assert "$r" in text
        assert "%x" not in text.split(";")[0]  # no vregs in the code
        assert "moves eliminated" in text
        assert "estimated cycles" in text

    @pytest.mark.parametrize("allocator", sorted(ALLOCATOR_CHOICES))
    def test_every_allocator_selectable(self, sample_ir, allocator):
        code, text = run_cli(
            ["alloc", sample_ir, "--allocator", allocator, "--regs", "8"]
        )
        assert code == 0 and "estimated cycles" in text


class TestCompare:
    def test_table_has_all_allocators(self, sample_ir):
        code, text = run_cli(["compare", sample_ir, "--regs", "8"])
        assert code == 0
        for name in ALLOCATOR_CHOICES:
            assert name in text


class TestBench:
    def test_bench_runs(self):
        code, text = run_cli(["bench", "jack", "--regs", "16"])
        assert code == 0
        assert "benchmark jack" in text
        assert "full" in text


class TestExample:
    def test_figure7_replay(self):
        code, text = run_cli(["example"])
        assert code == 0
        assert "Figure 7(a)" in text
        assert "Figure 7(h)" in text
        assert "moves eliminated 3/3" in text
        assert "paired loads fused 1" in text


class TestTargets:
    def test_describes_all_models(self):
        code, text = run_cli(["targets"])
        assert code == 0
        for label in ("high", "middle", "low"):
            assert label in text
        assert "volatile" in text


class TestJsonOutput:
    def test_alloc_json_speaks_the_service_schema(self, sample_ir):
        code, text = run_cli(["alloc", sample_ir, "--regs", "8", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["type"] == "allocation"
        assert payload["ok"] is True
        assert payload["effective_allocator"] == "full"
        assert payload["degraded"] is False
        assert payload["result_digest"]
        assert "$r" in payload["code"]
        assert payload["stats"]["moves_before"] > 0
        assert payload["cycles"]["total"] > 0

    def test_alloc_json_matches_direct_service_execution(self, sample_ir):
        from repro.service.protocol import AllocationRequest, MachineSpec
        from repro.service.scheduler import execute_request

        code, text = run_cli(["alloc", sample_ir, "--regs", "8", "--json"])
        payload = json.loads(text)
        direct = execute_request(AllocationRequest(
            id="direct", ir=open(sample_ir).read(), allocator="full",
            machine=MachineSpec(regs=8)))
        assert payload["result_digest"] == direct.result_digest
        assert payload["code"] == direct.code

    def test_compare_json_covers_every_allocator(self, sample_ir):
        code, text = run_cli(["compare", sample_ir, "--regs", "8",
                              "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["type"] == "comparison"
        assert set(payload["results"]) == set(ALLOCATOR_CHOICES)
        for wire in payload["results"].values():
            assert wire["ok"] and wire["result_digest"]

    def test_bench_json_names_the_benchmark(self):
        code, text = run_cli(["bench", "jack", "--regs", "16", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["bench"] == "jack"
        assert set(payload["results"]) == set(ALLOCATOR_CHOICES)

    def test_json_output_is_deterministic(self, sample_ir):
        _, first = run_cli(["alloc", sample_ir, "--regs", "8", "--json"])
        _, second = run_cli(["alloc", sample_ir, "--regs", "8", "--json"])
        assert first == second

    def test_every_json_document_carries_the_schema_version(self,
                                                            sample_ir):
        # The four emitted shapes all come from repro.service.schema and
        # are stamped with one shared version field.
        from repro.service.schema import SCHEMA_VERSION, final_stats_payload

        _, alloc = run_cli(["alloc", sample_ir, "--regs", "8", "--json"])
        _, compare = run_cli(["compare", sample_ir, "--regs", "8",
                              "--json"])
        _, bench = run_cli(["bench", "jack", "--regs", "16", "--json"])
        final = final_stats_payload({"counters": {}}, {"entries": 0})
        for text in (alloc, compare, bench):
            assert json.loads(text)["schema"] == SCHEMA_VERSION
        assert final["schema"] == SCHEMA_VERSION
        assert final["type"] == "final_stats"
        # comparison entries are full allocation documents themselves
        for wire in json.loads(compare)["results"].values():
            assert wire["schema"] == SCHEMA_VERSION
            assert wire["type"] == "allocation"


class TestErrorPaths:
    def test_missing_ir_file(self, capsys):
        code, text = run_cli(["alloc", "/no/such/file.ir"])
        assert code == 1 and not text
        assert "error:" in capsys.readouterr().err

    def test_malformed_ir_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.ir"
        bad.write_text("func oops( {\n")
        code, text = run_cli(["alloc", str(bad)])
        assert code == 1 and not text
        assert "error:" in capsys.readouterr().err

    def test_unknown_allocator_rejected_by_parser(self, sample_ir):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["alloc", sample_ir, "--allocator", "linear-scan"])

    def test_submit_requires_exactly_one_source(self, sample_ir):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--file", sample_ir, "--bench", "jess"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--bench", "quake"])

    def test_submit_without_server_fails_cleanly(self, capsys):
        code, text = run_cli(["submit", "--bench", "db",
                              "--port", "1"])  # nothing listens on 1
        assert code == 1 and not text
        assert "cannot reach allocation server" in capsys.readouterr().err

    def test_stats_without_server_fails_cleanly(self, capsys):
        code, text = run_cli(["stats", "--port", "1"])
        assert code == 1
        assert "cannot reach allocation server" in capsys.readouterr().err


class TestServiceCommands:
    @pytest.fixture
    def live_server(self):
        from repro.service import ResultCache, Scheduler, ServerThread

        thread = ServerThread(Scheduler(cache=ResultCache()))
        host, port = thread.start()
        yield host, port
        thread.stop()

    def test_submit_human_and_json(self, live_server):
        host, port = live_server
        code, text = run_cli(["submit", "--bench", "db", "--regs", "16",
                              "--host", host, "--port", str(port)])
        assert code == 0
        assert "moves" in text and "cycles" in text

        code, text = run_cli(["submit", "--bench", "db", "--regs", "16",
                              "--host", host, "--port", str(port),
                              "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["ok"] and payload["cached"]

    def test_submit_deadline_degrades(self, live_server):
        host, port = live_server
        code, text = run_cli(["submit", "--bench", "jack",
                              "--regs", "16", "--allocator", "full",
                              "--deadline", "0", "--host", host,
                              "--port", str(port), "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["ok"] and payload["degraded"]
        assert payload["effective_allocator"] == "chaitin"

    def test_stats_command(self, live_server):
        host, port = live_server
        run_cli(["submit", "--bench", "db", "--regs", "16",
                 "--host", host, "--port", str(port)])
        code, text = run_cli(["stats", "--host", host,
                              "--port", str(port)])
        assert code == 0
        payload = json.loads(text)
        assert payload["type"] == "stats"
        assert payload["schema"] >= 1
        assert payload["metrics"]["counters"]["requests_total"] >= 1
