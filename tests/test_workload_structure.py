"""Structural properties of generated workloads: loops, diamonds,
paired loads, pools, pressure."""

from repro.cfg.analysis import build_cfg
from repro.cfg.loops import compute_loops
from repro.core.pairs import find_paired_loads
from repro.ir.instructions import Load, Move
from repro.workloads.generator import generate_function, generate_module
from repro.workloads.profiles import SPEC_PROFILES, BenchmarkProfile


def profile(**kwargs):
    defaults = dict(name="t", stmts=20, int_pool=8)
    defaults.update(kwargs)
    return BenchmarkProfile(**defaults)


class TestLoops:
    def test_loop_heavy_profile_produces_loops(self):
        func = generate_function(
            "t", profile(loop_prob=0.5, max_loop_depth=3), seed=1
        )
        loops = compute_loops(build_cfg(func))
        assert loops.loops

    def test_loop_depth_respects_cap(self):
        for seed in range(5):
            func = generate_function(
                "t", profile(loop_prob=0.6, max_loop_depth=2), seed=seed
            )
            loops = compute_loops(build_cfg(func))
            assert all(lp.depth <= 2 for lp in loops.loops)

    def test_no_loops_when_disabled(self):
        func = generate_function("t", profile(loop_prob=0.0), seed=2)
        loops = compute_loops(build_cfg(func))
        assert not loops.loops

    def test_all_loops_counted(self):
        # every generated loop is governed by a constant trip count, so
        # the interpreter terminates; check structure: each loop header
        # region ends in a compare against a constant
        from repro.ir.instructions import Branch, ConstInst

        func = generate_function(
            "t", profile(loop_prob=0.5, max_loop_depth=2, stmts=30),
            seed=3,
        )
        cfg = build_cfg(func)
        loops = compute_loops(cfg)
        for loop in loops.loops:
            latches = [
                blk for blk in func.blocks
                if blk.label in loop.body
                and loop.header in blk.successors()
            ]
            assert latches


class TestShapes:
    def test_branch_probability_zero_yields_straightline_blocks(self):
        func = generate_function(
            "t", profile(branch_prob=0.0, loop_prob=0.0), seed=4
        )
        assert len(func.blocks) == 1

    def test_paired_probability_generates_candidates(self):
        func = generate_function(
            "t", profile(paired_prob=0.9, load_prob=0.6, stmts=40),
            seed=5,
        )
        assert find_paired_loads(func)

    def test_byte_probability_generates_byte_loads(self):
        func = generate_function(
            "t", profile(byte_prob=0.9, load_prob=0.6, stmts=40), seed=6
        )
        byte_loads = [i for _, i in func.instructions()
                      if isinstance(i, Load) and i.width == "byte"]
        assert byte_loads

    def test_copy_probability_generates_moves(self):
        func = generate_function(
            "t", profile(copy_prob=0.8, load_prob=0.0, call_prob=0.0,
                         store_prob=0.0, stmts=30), seed=7
        )
        moves = [i for _, i in func.instructions()
                 if isinstance(i, Move)]
        assert len(moves) >= 5

    def test_pool_pressure_reaches_epilogue(self):
        # the epilogue folds the whole pool: all pool values live at exit
        from repro.analysis.liveness import compute_liveness

        func = generate_function("t", profile(int_pool=10), seed=8)
        liveness = compute_liveness(func)
        last = func.blocks[-1]
        assert len(liveness.live_in[last.label]) >= 0  # structural smoke
        # stronger: the return value folds >= pool_size adds
        adds = [i for i in last.instrs if getattr(i, "op", None) == "add"]
        assert len(adds) >= 9 or len(func.blocks) > 1


class TestProfiles:
    def test_spec_profiles_are_self_consistent(self):
        for name, prof in SPEC_PROFILES.items():
            assert prof.name == name
            total_prob = (prof.call_prob + prof.load_prob
                          + prof.store_prob + prof.copy_prob)
            assert total_prob <= 1.0
            assert prof.min_params >= 1
            assert prof.max_call_args <= 8

    def test_module_function_names_unique(self):
        module = generate_module(SPEC_PROFILES["mtrt"], seed=0)
        names = [f.name for f in module.functions]
        assert len(names) == len(set(names))
