"""Simulation layer: operation semantics, memory, interpreter, cycles."""

import pytest

from repro.errors import SimulationError
from repro.ir.builder import IRBuilder
from repro.ir.values import Const, PReg, RegClass
from repro.sim.cycles import estimate_cycles
from repro.sim.interp import run_function
from repro.sim.ops import Memory, apply_binop, apply_unop, default_registry

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_diamond,
    build_paired_loads,
)


class TestOps:
    @pytest.mark.parametrize("op,a,b,expect", [
        ("add", 2, 3, 5),
        ("sub", 2, 3, -1),
        ("mul", 4, 5, 20),
        ("div", 7, 2, 3),
        ("div", -7, 2, -3),      # truncating, not floor
        ("div", 5, 0, 0),        # total
        ("rem", 7, 2, 1),
        ("rem", 5, 0, 0),
        ("and", 6, 3, 2),
        ("or", 6, 3, 7),
        ("xor", 6, 3, 5),
        ("shl", 1, 4, 16),
        ("shr", 16, 4, 1),
        ("cmplt", 1, 2, 1),
        ("cmpge", 1, 2, 0),
        ("cmpeq", 3, 3, 1),
    ])
    def test_int_ops(self, op, a, b, expect):
        assert apply_binop(op, a, b) == expect

    def test_wraparound_64bit(self):
        big = (1 << 63) - 1
        assert apply_binop("add", big, 1) == -(1 << 63)

    def test_float_ops(self):
        assert apply_binop("fadd", 1.5, 2.0) == 3.5
        assert apply_binop("fdiv", 1.0, 0) == 0.0

    def test_unary(self):
        assert apply_unop("neg", 5) == -5
        assert apply_unop("not", 0) == -1
        assert apply_unop("zext8", 0x1FF) == 0xFF
        assert apply_unop("itof", 3) == 3.0
        assert apply_unop("ftoi", 3.9) == 3

    def test_unknown_op_raises(self):
        with pytest.raises(SimulationError):
            apply_binop("frob", 1, 2)


class TestMemory:
    def test_write_read(self):
        mem = Memory()
        mem.write(100, 42)
        assert mem.read(100) == 42

    def test_unwritten_deterministic(self):
        assert Memory().read(1234) == Memory().read(1234)

    def test_byte_read_masks(self):
        mem = Memory()
        mem.write(8, 0x1234)
        assert mem.read(8, byte=True) == 0x34


class TestInterpreter:
    def test_diamond_both_paths(self):
        func = build_diamond()
        assert run_function(func, [1, 5]).value == 2   # p0+1
        assert run_function(func, [5, 1]).value == 3   # p1+2

    def test_loop_accumulates(self):
        func = build_counted_loop(trips=3)
        assert run_function(func, [7]).value == 21

    def test_calls_use_registry(self):
        func = build_call_heavy()
        r1 = run_function(func, [2, 3])
        r2 = run_function(func, [2, 3])
        assert r1.value == r2.value  # registry is deterministic

    def test_step_limit(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("inf", n_params=0)
        b.jump("spin")
        b.block("spin")
        b.jump("spin")
        func = b.finish()
        with pytest.raises(SimulationError):
            run_function(func, step_limit=100)

    def test_counts_collected(self):
        func = build_counted_loop(trips=2)
        result = run_function(func, [1])
        assert result.count("BinOp") > 0
        assert result.steps > 0

    def test_unregistered_call_raises(self):
        b = IRBuilder("f", n_params=0)
        b.call("no_such_fn", [])
        b.ret()
        func = b.finish()
        with pytest.raises(SimulationError):
            run_function(func)

    def test_undefined_register_reads_zero(self):
        from repro.ir.function import BasicBlock, Function
        from repro.ir.instructions import Ret
        from repro.ir.values import VReg

        func = Function("f", blocks=[
            BasicBlock("entry", [Ret(VReg(99))])
        ])
        assert run_function(func).value == 0


class TestCycles:
    def _allocated(self, build, machine):
        from repro.core import PreferenceDirectedAllocator
        from repro.pipeline import prepare_function
        from repro.regalloc import allocate_function

        func = prepare_function(build(), machine)
        allocate_function(func, machine, PreferenceDirectedAllocator())
        return func

    def test_report_components_nonnegative(self):
        from repro.target.presets import middle_pressure

        machine = middle_pressure()
        func = self._allocated(build_call_heavy, machine)
        report = estimate_cycles(func, machine)
        assert report.total > 0
        for field in ("op_cycles", "move_cycles", "spill_cycles",
                      "caller_save_cycles", "callee_save_cycles",
                      "byte_penalty_cycles", "call_overhead_cycles"):
            assert getattr(report, field) >= 0

    def test_paired_loads_fused_when_adjacent(self):
        from repro.target.presets import middle_pressure

        machine = middle_pressure()
        func = self._allocated(build_paired_loads, machine)
        report = estimate_cycles(func, machine)
        assert report.paired_loads_fused == 1
        assert report.paired_saved_cycles == 2.0

    def test_callee_save_counts_distinct_nonvolatiles(self):
        from repro.target.presets import middle_pressure

        machine = middle_pressure()
        func = self._allocated(build_call_heavy, machine)
        report = estimate_cycles(func, machine)
        # exactly 2 cycles per distinct non-volatile register used
        assert report.callee_save_cycles % 2 == 0

    def test_add_accumulates(self):
        from repro.sim.cycles import CycleReport

        a, b = CycleReport(), CycleReport()
        a.op_cycles, b.op_cycles = 5.0, 7.0
        b.paired_loads_fused = 2
        a.add(b)
        assert a.op_cycles == 12.0
        assert a.paired_loads_fused == 2

    def test_describe_mentions_total(self):
        from repro.sim.cycles import CycleReport

        assert "total=" in CycleReport().describe()
