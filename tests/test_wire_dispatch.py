"""The digest-deduped dispatch wire (:mod:`repro.exec.wire`).

Covers the control-tuple format end to end — pack, shared-memory
shipment, worker-side resolve with the decode/object caches — plus the
``REPRO_WIRE`` knob surface, the inline fallback when shared memory is
unavailable, and byte-identity of pool results across all three wire
modes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import runtime_knobs
from repro.errors import CodecError
from repro.exec import wire
from repro.exec.alloctask import round0_cache_max, run_alloc_job
from repro.exec.pool import WorkerPool
from repro.ir.codec import function_digest
from repro.ir.printer import print_function
from repro.pipeline import prepare_module
from repro.regalloc import AllocationOptions, ChaitinAllocator
from repro.target.presets import make_machine
from repro.workloads.generator import generate_module
from repro.workloads.profiles import BenchmarkProfile

FAST = dict(heartbeat_s=0.05, backoff_s=0.01, start_timeout_s=30.0)


@pytest.fixture(autouse=True)
def fresh_caches():
    wire.clear_decode_cache()
    wire.reset_wire_stats()
    yield
    wire.clear_decode_cache()
    wire.reset_wire_stats()


def small_payloads(n=4, regs=8):
    profile = BenchmarkProfile(name="wire", n_functions=n, stmts=4,
                               int_pool=4, call_prob=0.2,
                               branch_prob=0.2, loop_prob=0.1,
                               max_loop_depth=1)
    module = generate_module(profile, seed=11)
    machine = make_machine(regs)
    prepared = prepare_module(module, machine)
    options = AllocationOptions(verify=False)
    allocator = ChaitinAllocator()
    return [(func, machine, allocator, options)
            for func in prepared.functions]


class TestKnob:
    def test_parse_wire(self):
        for raw in ("0", "off", "FALSE", "no", "pickle", " Pickle "):
            assert wire.parse_wire(raw) == "pickle"
        assert wire.parse_wire("validate") == "validate"
        for raw in ("codec", "on", "1", "anything"):
            assert wire.parse_wire(raw) == "codec"

    def test_default_is_codec(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE", raising=False)
        assert wire.wire_mode() == "codec"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "validate")
        assert wire.wire_mode() == "validate"

    def test_runtime_knobs_surface(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "pickle")
        monkeypatch.setenv("REPRO_ROUND0_CACHE", "17")
        knobs = runtime_knobs()
        assert knobs["wire"] == "pickle"
        assert knobs["round0_cache"] == 17

    def test_round0_cache_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUND0_CACHE", raising=False)
        assert round0_cache_max() == 64
        monkeypatch.setenv("REPRO_ROUND0_CACHE", "5")
        assert round0_cache_max() == 5
        monkeypatch.setenv("REPRO_ROUND0_CACHE", "0")
        assert round0_cache_max() == 1
        monkeypatch.setenv("REPRO_ROUND0_CACHE", "nonsense")
        assert round0_cache_max() == 64


class TestPackBatch:
    def test_pickle_mode_is_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "pickle")
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        assert jobs == payloads
        assert shipment is None

    def test_ineligible_shapes_pass_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        for payloads in ([], [1, 2, 3], [("not", "a", "job")]):
            jobs, shipment = wire.pack_batch(payloads)
            assert jobs == payloads
            assert shipment is None

    def test_pack_resolve_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        try:
            assert all(wire.is_wire_job(j) for j in jobs)
            for (func, machine, allocator, options), job in \
                    zip(payloads, jobs):
                got = wire.resolve_job(job)
                rfunc, rmachine, rallocator, roptions, fdig, mdig = got
                assert print_function(rfunc) == print_function(func)
                assert rfunc is not func  # private clone per job
                assert fdig == function_digest(func)
                assert mdig == wire.machine_content_digest(machine)
                assert roptions.verify == options.verify
                assert type(rallocator) is type(allocator)
        finally:
            shipment.cleanup()

    def test_read_only_objects_shared_across_jobs(self, monkeypatch):
        """Machine/allocator/options resolve to one cached object per
        digest — the serial path's sharing, not a copy per job."""
        monkeypatch.setenv("REPRO_WIRE", "codec")
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        try:
            first = wire.resolve_job(jobs[0])
            second = wire.resolve_job(jobs[1])
            assert first[1] is second[1]  # machine
            assert first[2] is second[2]  # allocator
            assert first[3] is second[3]  # options
        finally:
            shipment.cleanup()

    def test_decode_cache_hits_across_batches(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        payloads = small_payloads()
        for expected_hits in (0, len(payloads)):
            jobs, shipment = wire.pack_batch(payloads)
            try:
                for job in jobs:
                    wire.resolve_job(job)
            finally:
                shipment.cleanup()
            info = wire.decode_cache_info()
            assert info["hits"] == expected_hits
        stats = wire.wire_stats()
        assert stats["batches_packed"] == 2
        assert stats["encodes"] == len(payloads)
        assert stats["encode_memo_hits"] == len(payloads)
        assert stats["shm_segments"] + stats["inline_batches"] == 2

    def test_segment_unlinked_after_cleanup(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        jobs, shipment = wire.pack_batch(small_payloads())
        if shipment.shm is None:
            pytest.skip("shared memory unavailable in this sandbox")
        name = shipment.shm.name
        shipment.cleanup()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_inline_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")

        def refuse(*args, **kwargs):
            raise OSError("no shm for you")

        import multiprocessing.shared_memory as shm_mod

        monkeypatch.setattr(shm_mod, "SharedMemory", refuse)
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        assert shipment.shm is None
        assert wire.wire_stats()["inline_batches"] == 1
        func, *_ = wire.resolve_job(jobs[0])
        assert print_function(func) == print_function(payloads[0][0])
        shipment.cleanup()  # no-op, must not raise


class TestValidateAndErrors:
    def test_validate_mode_passes_on_honest_blob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "validate")
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        try:
            for job in jobs:
                wire.resolve_job(job)
        finally:
            shipment.cleanup()

    def test_validate_mode_catches_divergence(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "validate")
        payloads = small_payloads()
        jobs, shipment = wire.pack_batch(payloads)
        try:
            # Lie about what was shipped: the oracle says function 1,
            # the blob is function 0.
            tampered = list(jobs[0])
            tampered[7] = pickle.dumps(payloads[1][0],
                                       pickle.HIGHEST_PROTOCOL)
            with pytest.raises(CodecError):
                wire.resolve_job(tuple(tampered))
        finally:
            shipment.cleanup()

    def test_missing_segment_is_codec_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        jobs, shipment = wire.pack_batch(small_payloads())
        shipment.cleanup()  # unlink before resolve
        wire.clear_decode_cache()
        with pytest.raises(CodecError):
            wire.resolve_job(jobs[0])

    def test_unknown_digest_is_codec_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        jobs, shipment = wire.pack_batch(small_payloads())
        try:
            bad = list(jobs[0])
            bad[2] = "0" * 64
            with pytest.raises(CodecError):
                wire.resolve_job(tuple(bad))
        finally:
            shipment.cleanup()


class TestPoolIdentity:
    def run_pool(self, mode, payloads, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", mode)
        pool = WorkerPool(workers=2, **FAST)
        try:
            results = pool.run_batch(payloads)
            assert all(r.ok for r in results), \
                [r.error for r in results if not r.ok]
            return [print_function(r.value[0].func) for r in results]
        finally:
            pool.shutdown()

    def test_results_identical_across_modes(self, monkeypatch):
        payloads = small_payloads()
        texts = {mode: self.run_pool(mode, payloads, monkeypatch)
                 for mode in wire.WIRE_MODES}
        assert texts["codec"] == texts["pickle"]
        assert texts["validate"] == texts["pickle"]

    def test_run_alloc_job_accepts_both_shapes(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "codec")
        payloads = small_payloads(n=2)
        jobs, shipment = wire.pack_batch(payloads)
        try:
            direct = run_alloc_job(payloads[0])
            via_wire = run_alloc_job(jobs[0])
            assert print_function(direct[0].func) == \
                print_function(via_wire[0].func)
            assert direct[1].total == via_wire[1].total
        finally:
            shipment.cleanup()
