"""Property-based tests (hypothesis) over randomly generated programs.

The generator is driven through seeds and downsized profiles so each
example stays small; the properties are the load-bearing invariants:

* the full pipeline + every allocator preserves program semantics,
* allocations are structurally valid (verifier),
* the CPG's partial order certifies colorability for any topological
  order (the paper's Section 5.2 claim),
* renumbering and SSA round-trips preserve semantics.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis.interference import build_interference
from repro.errors import AllocationError
from repro.analysis.renumber import renumber
from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.core.cpg import BOTTOM, TOP, build_cpg
from repro.ir.clone import clone_function
from repro.ir.validate import validate_function
from repro.ir.values import PReg, VReg
from repro.pipeline import prepare_function
from repro.regalloc import (
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    allocate_function,
    verify_allocation,
)
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.simplify import simplify
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.ssa.construct import to_ssa
from repro.ssa.destruct import from_ssa
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("prop"),
    stmts=st.integers(4, 14),
    int_pool=st.integers(3, 8),
    float_pool=st.integers(0, 3),
    call_prob=st.floats(0.0, 0.3),
    branch_prob=st.floats(0.0, 0.3),
    loop_prob=st.floats(0.0, 0.25),
    max_loop_depth=st.integers(1, 2),
    copy_prob=st.floats(0.0, 0.3),
    paired_prob=st.floats(0.0, 0.5),
    byte_prob=st.floats(0.0, 0.4),
    load_prob=st.floats(0.0, 0.3),
    store_prob=st.floats(0.0, 0.15),
    # K=4 machines only have two parameter registers
    max_params=st.integers(1, 2),
    max_call_args=st.integers(1, 2),
)

ALLOCATOR_FACTORIES = [
    ChaitinAllocator,
    BriggsAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    CallCostAllocator,
    lambda: PreferenceDirectedAllocator(PreferenceConfig.only_coalescing()),
    PreferenceDirectedAllocator,
]


def random_args(func, seed):
    rng = random.Random(seed)
    return [rng.randrange(16, 512, 4) for _ in func.params]


class TestSemanticPreservation:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000),
           alloc_index=st.integers(0, len(ALLOCATOR_FACTORIES) - 1),
           k=st.sampled_from([4, 8, 16]))
    def test_alloc_preserves_semantics(self, profile, seed, alloc_index, k):
        func = generate_function("prop", profile, seed)
        validate_function(func)
        machine = make_machine(k)
        prepared = prepare_function(clone_function(func), machine)
        args = random_args(func, seed)
        want = run_function(func, args, machine=machine, memory=Memory())
        try:
            allocate_function(prepared, machine,
                              ALLOCATOR_FACTORIES[alloc_index]())
        except AllocationError as err:
            # Spill-everywhere allocation has no live-range splitting:
            # a generated program whose peak single-instruction operand
            # pressure (no-spill reload/store temporaries) exceeds a
            # tiny k is genuinely unallocatable by this family, not a
            # semantics bug.  Reject the example; any other allocation
            # failure still fails the test.
            if "pressure cannot be met" in str(err):
                assume(False)
            raise
        verify_allocation(prepared, machine)
        got = run_function(prepared, args, machine=machine,
                           memory=Memory())
        assert got.value == want.value

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_ssa_roundtrip(self, profile, seed):
        func = generate_function("prop", profile, seed)
        args = random_args(func, seed)
        want = run_function(func, args, memory=Memory())
        work = clone_function(func)
        to_ssa(work)
        validate_function(work, ssa=True)
        from_ssa(work)
        validate_function(work)
        got = run_function(work, args, memory=Memory())
        assert got.value == want.value

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_renumber_preserves_semantics(self, profile, seed):
        func = generate_function("prop", profile, seed)
        args = random_args(func, seed)
        want = run_function(func, args, memory=Memory())
        work = clone_function(func)
        to_ssa(work)
        from_ssa(work)
        renumber(work)
        validate_function(work)
        got = run_function(work, args, memory=Memory())
        assert got.value == want.value


class TestCPGColorability:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000),
           order_seed=st.integers(0, 1_000), k=st.sampled_from([4, 6, 8]))
    def test_any_topological_order_colors(self, profile, seed,
                                          order_seed, k):
        machine = make_machine(k)
        func = prepare_function(
            generate_function("prop", profile, seed), machine
        )
        renumber(func)
        from repro.ir.values import RegClass

        ig = build_interference(func)
        graph = build_alloc_graph(ig, machine, RegClass.INT)
        wig = graph.snapshot_active_adjacency()
        simpl = simplify(graph, optimistic=True)
        cpg = build_cpg(graph, wig, simpl)
        assert cpg.topological_orders_exist()

        rng = random.Random(order_seed)
        indeg = {n: len(p) for n, p in cpg.preds.items()}
        frontier = [n for n, d in indeg.items()
                    if d == 0 and n != BOTTOM]
        assignment: dict[VReg, PReg] = {}
        while frontier:
            node = rng.choice(frontier)
            frontier.remove(node)
            for succ in cpg.succs.get(node, ()):
                indeg[succ] -= 1
                if indeg[succ] == 0 and succ != BOTTOM:
                    frontier.append(succ)
            if node == TOP or not isinstance(node, VReg):
                continue
            forbidden = set()
            for n in graph.adj.get(node, ()):
                if isinstance(n, PReg):
                    forbidden.add(n)
                elif n in assignment:
                    forbidden.add(assignment[n])
            free = [c for c in graph.colors if c not in forbidden]
            if node in simpl.optimistic:
                if free:
                    assignment[node] = free[0]
                continue
            assert free, "CPG colorability guarantee violated"
            assignment[node] = free[0]


class TestStructuralInvariants:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_interference_is_symmetric_and_irreflexive(self, profile, seed):
        machine = make_machine(8)
        func = prepare_function(
            generate_function("prop", profile, seed), machine
        )
        ig = build_interference(func)
        for node in ig.nodes():
            assert node not in ig.neighbors(node)
            for n in ig.neighbors(node):
                assert node in ig.neighbors(n)
                assert n.rclass is node.rclass

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_interpreter_deterministic(self, profile, seed):
        func = generate_function("prop", profile, seed)
        args = random_args(func, seed)
        a = run_function(clone_function(func), args, memory=Memory())
        b = run_function(clone_function(func), args, memory=Memory())
        assert a.value == b.value and a.steps == b.steps


class TestSelectIndexEquivalence:
    """PR 5: the indexed decision engines (REPRO_SELECT_INDEX) replay
    the retained scan oracles decision-for-decision — per-round simplify
    stacks (including spill picks), the selector's full pick/color
    trace, and the final assignment are identical in every mode."""

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000),
           k=st.sampled_from([4, 8, 16]))
    def test_decision_sequence_identical(self, profile, seed, k):
        import os

        from repro.core import allocator as allocator_mod

        func = generate_function("prop", profile, seed)
        machine = make_machine(k)
        real_simplify = allocator_mod.simplify
        prior = os.environ.get("REPRO_SELECT_INDEX")
        runs = {}
        try:
            for mode in ("0", "1", "validate"):
                os.environ["REPRO_SELECT_INDEX"] = mode
                stacks = []

                def recording(graph, optimistic=True, **kwargs):
                    res = real_simplify(graph, optimistic, **kwargs)
                    stacks.append((list(res.stack), set(res.optimistic),
                                   set(res.spilled)))
                    return res

                allocator_mod.simplify = recording
                alloc = PreferenceDirectedAllocator(keep_trace=True)
                prepared = prepare_function(clone_function(func), machine)
                try:
                    result = allocate_function(prepared, machine, alloc)
                except AllocationError as err:
                    # Unallocatable pressure must reproduce identically
                    # across engines; any other failure is a real bug.
                    if "pressure cannot be met" not in str(err):
                        raise
                    runs[mode] = ("pressure-error", stacks)
                    continue
                finally:
                    allocator_mod.simplify = real_simplify
                runs[mode] = (
                    stacks,
                    list(alloc.last_trace.steps),
                    sorted((v.id, str(p))
                           for v, p in result.assignment.items()),
                    (result.stats.moves_eliminated,
                     result.stats.spill_loads,
                     result.stats.spill_stores,
                     result.stats.spilled_webs,
                     result.stats.rounds),
                )
        finally:
            allocator_mod.simplify = real_simplify
            if prior is None:
                os.environ.pop("REPRO_SELECT_INDEX", None)
            else:
                os.environ["REPRO_SELECT_INDEX"] = prior
        assert runs["0"] == runs["1"]
        assert runs["1"] == runs["validate"]
