"""The per-phase profiler: accumulation, nesting, and its wiring."""

from __future__ import annotations

import io
import time

from repro.cli import main
from repro.core import PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.pipeline import prepare_module
from repro.profiling import merge_snapshots, phase, profiled
from repro.regalloc import ChaitinAllocator
from repro.regalloc.base import allocate_function
from repro.service.metrics import ServiceMetrics
from repro.sim.cycles import estimate_cycles
from repro.target.presets import make_machine
from repro.workloads.spillstress import spill_stress_function
from repro.ir.function import Module


class TestProfiler:
    def test_inactive_phase_is_noop(self):
        # Outside `profiled()` every call hands back the one shared
        # null span; nothing is recorded anywhere.
        span = phase("anything")
        assert phase("other") is span
        with span:
            pass

    def test_paths_nest_and_accumulate(self):
        with profiled() as prof:
            for _ in range(3):
                with phase("outer"):
                    with phase("inner"):
                        time.sleep(0.001)
        snap = prof.snapshot()
        assert set(snap) == {"outer", "outer/inner"}
        assert snap["outer"]["calls"] == 3
        assert snap["outer/inner"]["calls"] == 3
        assert snap["outer"]["s"] >= snap["outer/inner"]["s"] > 0

    def test_total_and_missing_path(self):
        with profiled() as prof:
            with phase("a"):
                pass
        assert prof.total("a") > 0
        assert prof.total("never") == 0.0

    def test_nested_activation_restores_previous(self):
        with profiled() as outer:
            with phase("before"):
                pass
            with profiled() as inner:
                with phase("shadowed"):
                    pass
            with phase("after"):
                pass
        assert set(inner.snapshot()) == {"shadowed"}
        assert set(outer.snapshot()) == {"before", "after"}
        assert phase("outside").__class__.__name__ == "_NullPhase"

    def test_merge_snapshots(self):
        a = {"x": {"s": 1.0, "calls": 2}, "y": {"s": 0.5, "calls": 1}}
        b = {"x": {"s": 0.25, "calls": 1}}
        merged = merge_snapshots([a, b])
        assert merged == {
            "x": {"s": 1.25, "calls": 3},
            "y": {"s": 0.5, "calls": 1},
        }


class TestPipelineWiring:
    def test_allocation_emits_phase_tree(self):
        machine = make_machine(8)
        module = Module("m")
        module.add(spill_stress_function(
            "f", n_segments=6, hot_every=3, hot_pressure=12,
            cold_pressure=2, cold_chain=4, trips=2,
        ))
        prepared = prepare_module(module, machine)
        func = clone_function(prepared.functions[0])
        with profiled() as prof:
            result = allocate_function(func, machine, ChaitinAllocator())
        snap = prof.snapshot()
        for expected in ("renumber", "analyze", "color", "rewrite"):
            assert expected in snap, f"missing phase {expected!r}"
        # Spill rounds happened, so their phases must show up too.
        assert result.stats.rounds > 1
        assert "spill-insert" in snap
        assert "reanalyze" in snap
        # Sub-phases nest under their parent path.
        assert any(p.startswith("analyze/") for p in snap)

    def test_dataflow_subphases_nest_under_parents(self):
        machine = make_machine(8)
        module = Module("m")
        module.add(spill_stress_function(
            "f", n_segments=6, hot_every=3, hot_pressure=12,
            cold_pressure=2, cold_chain=4, trips=2,
        ))
        prepared = prepare_module(module, machine)
        func = clone_function(prepared.functions[0])
        with profiled() as prof:
            result = allocate_function(
                func, machine, PreferenceDirectedAllocator()
            )
        snap = prof.snapshot()
        assert result.stats.rounds > 1
        # The dataflow kernels' sub-phases sit under their analysis
        # parents, in both the first round and the spill re-analysis.
        for expected in (
            "analyze/liveness/solve",
            "analyze/interference/rows",
            "color/CPG/closure",
            "reanalyze/liveness/solve",
            "reanalyze/interference/rows",
        ):
            assert expected in snap, f"missing phase {expected!r}"
        # And never float to the root: a bare kernel name here means a
        # caller ran an analysis without an enclosing phase, which would
        # double-count it in the combined dataflow metric.
        for orphan in ("solve", "rows", "closure",
                       "liveness", "interference", "CPG"):
            assert orphan not in snap, f"orphan root phase {orphan!r}"

    def test_cycle_estimator_phases_nest(self):
        # estimate_cycles re-runs liveness on allocated code; its solve
        # sub-phase must nest under "cycles", not pollute the root.
        machine = make_machine(8)
        module = Module("m")
        module.add(spill_stress_function(
            "f", n_segments=4, hot_every=2, hot_pressure=10,
            cold_pressure=2, cold_chain=3, trips=2,
        ))
        prepared = prepare_module(module, machine)
        func = clone_function(prepared.functions[0])
        allocate_function(func, machine, ChaitinAllocator())
        with profiled() as prof:
            estimate_cycles(func, machine)
        snap = prof.snapshot()
        assert "cycles" in snap
        assert "cycles/solve" in snap
        assert "solve" not in snap

    def test_cli_profile_prints_table(self, capsys):
        out = io.StringIO()
        code = main(["bench", "jack", "--regs", "16", "--profile"], out=out)
        assert code == 0
        err = capsys.readouterr().err
        assert "phase" in err and "seconds" in err
        assert "color" in err


class TestMetricsWiring:
    def test_record_phases_folds_snapshots(self):
        metrics = ServiceMetrics()
        metrics.record_phases({"color": {"s": 0.5, "calls": 2}})
        metrics.record_phases({"color": {"s": 0.25, "calls": 1},
                               "rewrite": {"s": 0.1, "calls": 1}})
        snap = metrics.snapshot()["alloc_phases"]
        assert snap["color"] == {"s": 0.75, "calls": 3}
        assert snap["rewrite"] == {"s": 0.1, "calls": 1}
