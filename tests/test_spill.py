"""Spill-code insertion: placement, temporaries, semantics."""

from repro.analysis.renumber import renumber
from repro.ir.clone import clone_function
from repro.ir.instructions import SpillLoad, SpillStore
from repro.ir.validate import validate_function
from repro.regalloc.spill import insert_spill_code
from repro.sim.interp import run_function
from repro.sim.ops import Memory

from conftest import build_counted_loop, build_diamond, build_straightline


def spill_instrs(func):
    loads = [i for _, i in func.instructions() if isinstance(i, SpillLoad)]
    stores = [i for _, i in func.instructions() if isinstance(i, SpillStore)]
    return loads, stores


class TestInsertion:
    def test_store_after_def_load_before_use(self):
        func = build_straightline()
        target = func.params[0]
        report = insert_spill_code(func, {target})
        loads, stores = spill_instrs(func)
        assert report.loads_inserted == len(loads)
        assert report.stores_inserted == len(stores)
        assert loads  # param had uses
        validate_function(func)

    def test_fresh_temps_are_no_spill(self):
        func = build_straightline()
        target = func.params[0]
        insert_spill_code(func, {target})
        loads, stores = spill_instrs(func)
        for instr in loads:
            assert instr.dst.no_spill
        for instr in stores:
            # the synthetic entry store of a spilled parameter reads the
            # parameter register itself; all others go through temps
            assert instr.src.no_spill or instr.src in func.params

    def test_each_web_gets_own_slot(self):
        func = build_diamond()
        targets = set(func.params)
        report = insert_spill_code(func, targets)
        assert len(set(report.slots.values())) == len(targets)

    def test_loop_spill_counts(self):
        func = build_counted_loop()
        acc = [v for v in func.vregs() if v not in func.params]
        target = acc[1]  # the accumulator (def in entry + loop)
        insert_spill_code(func, {target})
        loads, stores = spill_instrs(func)
        assert loads and stores

    def test_semantics_preserved(self):
        for build, args in [
            (build_straightline, [4, 5]),
            (build_diamond, [1, 2]),
            (build_counted_loop, [6]),
        ]:
            func = build()
            before = clone_function(func)
            insert_spill_code(func, set(func.params))
            ref = run_function(before, args, memory=Memory())
            got = run_function(func, args, memory=Memory())
            assert ref.value == got.value

    def test_spilled_register_gone_after_renumber(self):
        func = build_straightline()
        target = func.params[0]
        insert_spill_code(func, {target})
        renumber(func)
        assert target not in func.vregs()

    def test_use_and_def_in_same_instruction(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("f", n_params=1)
        v = b.move(b.param(0))
        b.binop("add", v, Const(1), dst=v)
        b.ret(v)
        func = b.finish()
        before = clone_function(func)
        insert_spill_code(func, {v})
        # reload before, store after, different temps
        idx = [i for i, ins in enumerate(func.entry.instrs)
               if getattr(ins, "op", None) == "add"][0]
        assert isinstance(func.entry.instrs[idx - 1], SpillLoad)
        assert isinstance(func.entry.instrs[idx + 1], SpillStore)
        add = func.entry.instrs[idx]
        assert add.dst != add.lhs
        ref = run_function(before, [5], memory=Memory())
        got = run_function(func, [5], memory=Memory())
        assert ref.value == got.value
