"""Coalescing strategies: aggressive, Briggs, George."""

from repro.analysis.interference import build_interference
from repro.ir.builder import IRBuilder
from repro.ir.values import Const, PReg, RegClass
from repro.regalloc.coalesce import (
    briggs_conservative_ok,
    coalesce_aggressive,
    coalesce_conservative,
    conservative_ok,
    george_ok,
    merge_move,
    mergeable,
)
from repro.regalloc.igraph import build_alloc_graph
from repro.target.presets import figure7_machine, make_machine


def graph_of(func, machine):
    return build_alloc_graph(build_interference(func), machine,
                             RegClass.INT)


def copy_chain(n_copies: int):
    b = IRBuilder("f", n_params=1)
    cur = b.param(0)
    for _ in range(n_copies):
        cur = b.move(cur)
    b.ret(cur)
    return b.finish()


class TestMergeable:
    def test_non_interfering_copy_ok(self):
        func = copy_chain(1)
        machine = make_machine(8)
        graph = graph_of(func, machine)
        mv = graph.moves[0]
        assert mergeable(graph, mv.dst, mv.src)

    def test_interfering_pair_rejected(self):
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        u = b.add(t, b.param(0))  # t and p0 both live: interfere? no...
        v = b.add(u, t)
        b.ret(v)
        func = b.finish()
        machine = make_machine(8)
        graph = graph_of(func, machine)
        a, bb = list(graph.active)[:2]
        # find an actually interfering pair
        pairs = [
            (x, y) for x in graph.active for y in graph.active
            if x != y and graph.interferes(x, y)
        ]
        assert pairs
        x, y = pairs[0]
        assert not mergeable(graph, x, y)

    def test_two_physicals_rejected(self):
        func = copy_chain(1)
        graph = graph_of(func, make_machine(8))
        assert not mergeable(graph, PReg(0), PReg(1))


class TestAggressive:
    def test_chain_collapses_fully(self):
        func = copy_chain(4)
        graph = graph_of(func, make_machine(8))
        merged = coalesce_aggressive(graph)
        assert merged == 4  # every chain copy merged
        reps = {graph.find(mv.dst) for mv in graph.moves}
        reps |= {graph.find(mv.src) for mv in graph.moves}
        assert len(reps) == 1

    def test_merges_into_physical(self):
        b = IRBuilder("f", n_params=0)
        v = b.const(1)
        b.emit_preg_move = None  # readability only
        from repro.ir.instructions import Move, Ret

        b.current.instrs.append(Move(PReg(0), v))
        b.current.instrs.append(Ret(None, reg_uses=[PReg(0)]))
        func = b.func
        graph = graph_of(func, make_machine(8))
        merged = coalesce_aggressive(graph)
        assert merged == 1
        assert graph.find(v) == PReg(0)


class TestConservative:
    def test_briggs_ok_in_sparse_graph(self):
        func = copy_chain(2)
        graph = graph_of(func, make_machine(8))
        mv = graph.moves[0]
        assert briggs_conservative_ok(graph, graph.find(mv.dst),
                                      graph.find(mv.src))

    def test_briggs_blocks_when_too_many_significant(self):
        # Build a dense graph: K=4 machine, a 5-clique around the pair.
        b = IRBuilder("f", n_params=1)
        x = b.move(b.param(0))
        others = [b.const(i) for i in range(5)]
        y = b.move(x)
        acc = y
        for o in others:
            acc = b.add(acc, o)
        acc = b.add(acc, x)
        b.ret(acc)
        func = b.finish()
        machine = make_machine(4)
        graph = graph_of(func, machine)
        merged = coalesce_conservative(graph)
        aggressive = graph_of(func, machine)
        merged_aggr = coalesce_aggressive(aggressive)
        assert merged <= merged_aggr

    def test_george_with_precolored(self):
        func = copy_chain(1)
        graph = graph_of(func, make_machine(8))
        v = graph.moves[0].dst
        # merging v into a fresh physical register: all of v's neighbors
        # are low-degree, so the George test passes
        free = next(c for c in graph.colors if not graph.interferes(v, c))
        assert george_ok(graph, v, free)

    def test_conservative_ok_dispatches(self):
        func = copy_chain(1)
        graph = graph_of(func, make_machine(8))
        mv = graph.moves[0]
        assert conservative_ok(graph, mv.dst, mv.src) in (True, False)


class TestMergeMove:
    def test_identity_after_merge_not_remergeable(self):
        func = copy_chain(1)
        graph = graph_of(func, make_machine(8))
        mv = graph.moves[0]
        assert merge_move(graph, mv) is not None
        assert merge_move(graph, mv) is None
