"""Focused tests for corners the broader suites pass over: printer
annotations, CPG traversal helpers, interpreter float/byte paths, CLI
error handling, dominance queries, and the chain-CPG ablation hook."""

import io

from repro.cli import main as cli_main
from repro.core.allocator import _chain_cpg
from repro.core.cpg import BOTTOM, TOP
from repro.ir.builder import IRBuilder
from repro.ir.printer import format_assignment, print_function
from repro.ir.values import Const, PReg, RegClass, VReg
from repro.regalloc.simplify import SimplifyResult
from repro.sim.interp import run_function
from repro.sim.ops import Memory

from conftest import build_diamond


class TestPrinterExtras:
    def test_instruction_annotations(self):
        func = build_diamond()
        text = print_function(
            func,
            annotate_instr=lambda i: "move!" if i.is_move else "",
        )
        assert "; move!" not in text or text.count("; move!") >= 1

    def test_block_annotations(self):
        func = build_diamond()
        text = print_function(
            func, annotate_block=lambda blk: f"{len(blk.instrs)} instrs"
        )
        assert "; 1 instrs" in text or "instrs" in text

    def test_format_assignment_lines(self):
        table = {VReg(0, name="a"): PReg(1), VReg(1, name="b"): PReg(2)}
        text = format_assignment(table, per_line=1)
        assert "%a -> $r1" in text
        assert len(text.splitlines()) == 2


class TestChainCPG:
    def test_chain_preserves_stack_order(self):
        a, b, c = VReg(0, name="a"), VReg(1, name="b"), VReg(2, name="c")
        simpl = SimplifyResult(stack=[a, b, c])
        cpg = _chain_cpg(simpl)
        # select order (pop) is c, b, a -> chain top->c->b->a->bottom
        assert cpg.succs[TOP] == {c}
        assert cpg.succs[c] == {b}
        assert cpg.succs[b] == {a}
        assert BOTTOM in cpg.succs[a]

    def test_empty_stack(self):
        cpg = _chain_cpg(SimplifyResult())
        assert cpg.succs.get(TOP) == set()

    def test_any_topological_order_covers_all(self):
        a, b = VReg(0, name="a"), VReg(1, name="b")
        cpg = _chain_cpg(SimplifyResult(stack=[a, b]))
        order = cpg.any_topological_order()
        assert order == [b, a]


class TestInterpreterPaths:
    def test_float_arithmetic_flow(self):
        b = IRBuilder("f", n_params=0)
        x = b.const(1.5, RegClass.FLOAT)
        y = b.const(2.5, RegClass.FLOAT)
        s = b.binop("fmul", x, y)
        t = b.unary("ftoi", s, rclass=RegClass.INT)
        b.ret(t)
        assert run_function(b.finish()).value == 3

    def test_byte_load_masks_memory(self):
        b = IRBuilder("f", n_params=1)
        v = b.load(b.param(0), 0, width="byte")
        b.ret(v)
        memory = Memory()
        memory.write(400, 0xABC)
        got = run_function(b.finish(), [400], memory=memory)
        assert got.value == 0xBC

    def test_store_then_load_roundtrip(self):
        b = IRBuilder("f", n_params=1)
        b.store(b.param(0), 8, Const(1234))
        v = b.load(b.param(0), 8)
        b.ret(v)
        assert run_function(b.finish(), [64], memory=Memory()).value == 1234

    def test_shift_and_mask_ops(self):
        b = IRBuilder("f", n_params=1)
        x = b.binop("shl", b.param(0), Const(3))
        y = b.binop("and", x, Const(0xFF))
        z = b.unary("not", y)
        w = b.unary("neg", z)
        b.ret(w)
        # p0=5 -> shl 3 = 40 -> and 0xFF = 40 -> not = -41 -> neg = 41
        assert run_function(b.finish(), [5]).value == 41


class TestCLIErrors:
    def test_parse_error_returns_one(self, tmp_path):
        bad = tmp_path / "bad.ir"
        bad.write_text("this is not ir")
        out = io.StringIO()
        assert cli_main(["alloc", str(bad)], out=out) == 1

    def test_missing_file_exits_cleanly(self, tmp_path, capsys):
        # Unreadable input is a CLI error (exit 1 + stderr message),
        # not a traceback.
        assert cli_main(["alloc", str(tmp_path / "nope.ir")],
                        out=io.StringIO()) == 1
        assert "error:" in capsys.readouterr().err


class TestDominanceQueries:
    def test_dominates_along_linear_chain(self):
        b = IRBuilder("f", n_params=0)
        b.jump("m")
        b.block("m")
        b.jump("x")
        b.block("x")
        b.ret()
        from repro.cfg.analysis import build_cfg
        from repro.cfg.dominance import compute_dominance

        dom = compute_dominance(build_cfg(b.finish()))
        assert dom.dominates("entry", "x")
        assert dom.dominates("m", "x")
        assert not dom.dominates("x", "m")

    def test_unreachable_blocks_excluded(self):
        from repro.cfg.analysis import build_cfg
        from repro.cfg.dominance import compute_dominance
        from repro.ir.function import BasicBlock, Function
        from repro.ir.instructions import Jump, Ret

        func = Function("f", blocks=[
            BasicBlock("entry", [Ret()]),
            BasicBlock("island", [Jump("entry")]),
        ])
        dom = compute_dominance(build_cfg(func))
        assert "island" not in dom.idom
        assert "island" not in dom.frontier


class TestMachineDescribe:
    def test_figure7_description(self):
        from repro.target.presets import figure7_machine

        text = figure7_machine().describe()
        assert "$r1" in text and "non-volatile" in text
        assert "K=3" in text
