"""The mutable coloring graph: degrees, removal, merging."""

import pytest

from repro.analysis.interference import build_interference
from repro.errors import AllocationError
from repro.ir.builder import IRBuilder
from repro.ir.values import PReg, RegClass, VReg
from repro.regalloc.igraph import INFINITE_DEGREE, build_alloc_graph
from repro.target.presets import middle_pressure


def small_graph():
    """Three mutually-interfering values plus a copy."""
    b = IRBuilder("f", n_params=0)
    x = b.const(1)
    y = b.const(2)
    z = b.const(3)
    t = b.move(x)
    u = b.add(y, z)
    v = b.add(u, t)
    w = b.add(v, x)
    b.ret(w)
    func = b.finish()
    machine = middle_pressure()
    ig = build_interference(func)
    graph = build_alloc_graph(ig, machine, RegClass.INT)
    return graph, (x, y, z, t)


class TestStructure:
    def test_active_nodes_are_vregs(self):
        graph, _ = small_graph()
        assert all(isinstance(n, VReg) for n in graph.active)

    def test_degree_matches_neighbors(self):
        graph, (x, y, z, t) = small_graph()
        for node in graph.active:
            assert graph.degree(node) == len(graph.neighbors(node))

    def test_precolored_infinite_degree(self):
        graph, _ = small_graph()
        assert graph.degree(PReg(0)) == INFINITE_DEGREE

    def test_all_colors_present(self):
        graph, _ = small_graph()
        assert len(graph.colors) == 24


class TestRemoval:
    def test_remove_updates_neighbor_degrees(self):
        graph, (x, y, z, t) = small_graph()
        before = {n: graph.degree(n) for n in graph.neighbors(y)
                  if isinstance(n, VReg)}
        graph.remove(y)
        for n, deg in before.items():
            assert graph.degree(n) == deg - 1

    def test_remove_twice_rejected(self):
        graph, (x, y, z, t) = small_graph()
        graph.remove(y)
        with pytest.raises(AllocationError):
            graph.remove(y)

    def test_neighbors_exclude_removed(self):
        graph, (x, y, z, t) = small_graph()
        neighbors_of_z = graph.neighbors(z)
        if y in neighbors_of_z:
            graph.remove(y)
            assert y not in graph.neighbors(z)
            assert y in graph.all_neighbors(z)


class TestMerge:
    def test_merge_unions_adjacency(self):
        graph, (x, y, z, t) = small_graph()
        assert not graph.interferes(x, t)
        neighbors = (graph.neighbors(x) | graph.neighbors(t)) - {x, t}
        graph.merge(x, t)
        assert graph.find(t) == x
        assert graph.neighbors(x) >= neighbors
        assert t not in graph.active

    def test_merge_into_precolored(self):
        graph, (x, y, z, t) = small_graph()
        free_preg = next(
            c for c in graph.colors if not graph.interferes(t, c)
        )
        graph.merge(free_preg, t)
        assert graph.find(t) == free_preg
        assert t in graph.members_of(free_preg)

    def test_merge_adds_spill_costs(self):
        graph, (x, y, z, t) = small_graph()
        graph.spill_costs[x] = 5.0
        graph.spill_costs[t] = 3.0
        graph.merge(x, t)
        assert graph.spill_costs[x] == 8.0

    def test_merge_shared_neighbor_degree_drops(self):
        graph, (x, y, z, t) = small_graph()
        shared = [
            n for n in graph.neighbors(x) & graph.neighbors(t)
            if isinstance(n, VReg)
        ]
        degrees = {n: graph.degree(n) for n in shared}
        graph.merge(x, t)
        for n in shared:
            assert graph.degree(n) == degrees[n] - 1

    def test_merge_inactive_rejected(self):
        graph, (x, y, z, t) = small_graph()
        graph.remove(t)
        with pytest.raises(AllocationError):
            graph.merge(x, t)

    def test_no_spill_member_makes_cost_infinite(self):
        graph, (x, y, z, t) = small_graph()
        ns = VReg(100, no_spill=True)
        graph.adj[ns] = set()
        graph.active.add(ns)
        graph._degree[ns] = 0
        graph.members[ns] = {ns}
        graph.merge(x, ns)
        assert graph.spill_cost(x) == float("inf")


class TestCopyRelations:
    def test_copy_related_via_moves(self):
        graph, (x, y, z, t) = small_graph()
        assert graph.find(t) in {
            graph.find(r) for r in graph.copy_related(x)
        } or t in graph.copy_related(x)

    def test_copy_related_follows_merges(self):
        graph, (x, y, z, t) = small_graph()
        graph.merge(x, t)
        # x and t merged: the move's other end resolves to x itself, so
        # no external copy relation remains for x through that move.
        assert x not in graph.copy_related(x)
