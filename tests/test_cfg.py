"""CFG snapshots: edges, orders, reachability, dominance, loops."""

import pytest

from repro.cfg.analysis import build_cfg, remove_unreachable_blocks
from repro.cfg.dominance import compute_dominance
from repro.cfg.loops import LOOP_FREQ_FACTOR, compute_loops
from repro.errors import AnalysisError
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Jump, Ret
from repro.ir.values import Const, VReg

from conftest import build_counted_loop, build_diamond


def build_nested_loop():
    b = IRBuilder("nested", n_params=1)
    b.jump("outer")
    b.block("outer")
    b.jump("inner")
    b.block("inner")
    c1 = b.binop("cmplt", b.param(0), Const(1))
    b.branch(c1, "inner", "outer_latch")
    b.block("outer_latch")
    c2 = b.binop("cmplt", b.param(0), Const(2))
    b.branch(c2, "outer", "exit")
    b.block("exit")
    b.ret()
    return b.finish()


class TestCFG:
    def test_diamond_edges(self):
        cfg = build_cfg(build_diamond())
        assert set(cfg.succs["entry"]) == {"then", "else_"}
        assert set(cfg.preds["merge"]) == {"then", "else_"}
        assert cfg.preds["entry"] == ()

    def test_rpo_starts_at_entry_ends_at_exit(self):
        cfg = build_cfg(build_diamond())
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert rpo[-1] == "merge"
        assert set(rpo) == {"entry", "then", "else_", "merge"}

    def test_postorder_is_reverse(self):
        cfg = build_cfg(build_diamond())
        assert cfg.postorder() == list(reversed(cfg.reverse_postorder()))

    def test_missing_terminator_raises(self):
        func = Function("f", blocks=[BasicBlock("entry", [])])
        with pytest.raises(AnalysisError):
            build_cfg(func)

    def test_unreachable_removal(self):
        func = Function("f", blocks=[
            BasicBlock("entry", [Ret()]),
            BasicBlock("orphan", [Jump("entry")]),
        ])
        assert remove_unreachable_blocks(func) == 1
        assert [blk.label for blk in func.blocks] == ["entry"]

    def test_unreachable_removal_fixes_phis(self):
        from repro.ir.instructions import Phi

        func = Function("f", blocks=[
            BasicBlock("entry", [Jump("m")]),
            BasicBlock("orphan", [Jump("m")]),
            BasicBlock("m", [
                Phi(VReg(0), {"entry": VReg(1), "orphan": VReg(2)}), Ret()
            ]),
        ])
        remove_unreachable_blocks(func)
        (phi,) = func.block("m").phis()
        assert set(phi.incoming) == {"entry"}


class TestDominance:
    def test_diamond(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominance(cfg)
        assert dom.idom["then"] == "entry"
        assert dom.idom["else_"] == "entry"
        assert dom.idom["merge"] == "entry"
        assert dom.frontier["then"] == {"merge"}
        assert dom.frontier["else_"] == {"merge"}

    def test_dominates_reflexive_and_entry(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominance(cfg)
        assert dom.dominates("entry", "merge")
        assert dom.dominates("then", "then")
        assert not dom.dominates("then", "merge")

    def test_loop_header_frontier_contains_itself(self):
        cfg = build_cfg(build_counted_loop())
        dom = compute_dominance(cfg)
        assert "head" in dom.frontier["head"]

    def test_dom_tree_preorder_visits_all(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominance(cfg)
        order = dom.dom_tree_preorder()
        assert order[0] == "entry"
        assert set(order) == {"entry", "then", "else_", "merge"}


class TestLoops:
    def test_single_loop(self):
        cfg = build_cfg(build_counted_loop())
        loops = compute_loops(cfg)
        assert len(loops.loops) == 1
        assert loops.loops[0].header == "head"
        assert loops.depth["head"] == 1
        assert loops.depth["entry"] == 0
        assert loops.depth["exit"] == 0

    def test_freq_factors(self):
        cfg = build_cfg(build_counted_loop())
        loops = compute_loops(cfg)
        assert loops.freq("entry") == 1
        assert loops.freq("head") == LOOP_FREQ_FACTOR

    def test_nested_depth(self):
        cfg = build_cfg(build_nested_loop())
        loops = compute_loops(cfg)
        assert loops.depth["inner"] == 2
        assert loops.depth["outer"] == 1
        assert loops.freq("inner") == LOOP_FREQ_FACTOR ** 2

    def test_loop_of_innermost(self):
        cfg = build_cfg(build_nested_loop())
        loops = compute_loops(cfg)
        inner = loops.loop_of("inner")
        assert inner is not None and inner.header == "inner"
        assert inner.parent is not None and inner.parent.header == "outer"

    def test_irreducible_edge_detected(self):
        # entry branches into the middle of a cycle a <-> b.
        func = Function("f", blocks=[
            BasicBlock("entry", [Branch(VReg(0), "a", "b")]),
            BasicBlock("a", [Jump("b")]),
            BasicBlock("b", [Branch(VReg(0), "a", "exit")]),
            BasicBlock("exit", [Ret()]),
        ])
        cfg = build_cfg(func)
        loops = compute_loops(cfg)
        assert loops.irreducible_edges
        assert not loops.loops
