"""Edit-driven incremental re-allocation: sessions, deltas, wire path.

The load-bearing property is *exactness*: every path through the
session ladder (value-patch, struct-patch, rebuild) must produce
byte-identical allocations to a from-scratch run.  Validate mode
(``incremental_edits="validate"``) checks this internally — it rebuilds
every analysis from scratch, compares phase by phase
(:func:`repro.analysis.incremental.compare_analyses`), re-allocates,
and raises :class:`~repro.errors.AllocationError` on any divergence —
so the property tests below only need to drive random edit chains
through it and let the machinery self-check.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.errors import AllocationError
from repro.ir.clone import clone_function
from repro.ir.function import BasicBlock
from repro.ir.instructions import BinOp, ConstInst, Jump, Store
from repro.ir.printer import print_function
from repro.ir.validate import validate_function
from repro.ir.values import Const, RegClass, VReg
from repro.regalloc import AllocationOptions, ChaitinAllocator
from repro.service.session import (
    ModuleSession,
    SessionStore,
    allocate_function_incremental,
    session_digest,
)
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("edit"),
    stmts=st.integers(6, 16),
    int_pool=st.integers(3, 7),
    float_pool=st.integers(0, 2),
    call_prob=st.floats(0.0, 0.25),
    branch_prob=st.floats(0.0, 0.3),
    loop_prob=st.floats(0.0, 0.25),
    max_loop_depth=st.integers(1, 2),
    paired_prob=st.floats(0.0, 0.4),
    load_prob=st.floats(0.0, 0.3),
    store_prob=st.floats(0.0, 0.2),
    max_params=st.integers(1, 2),
    max_call_args=st.integers(1, 2),
)


# ----------------------------------------------------------------------
# Random edit scripts.  Each op mutates a raw (unprepared) function in
# place and keeps it valid; ops that find no applicable site are no-ops.

def edit_modify_const(func, rng) -> bool:
    sites = [(blk, i) for blk in func.blocks
             for i, ins in enumerate(blk.instrs)
             if isinstance(ins, ConstInst)]
    if not sites:
        return False
    blk, i = rng.choice(sites)
    blk.instrs[i].value += rng.randrange(1, 9)
    return True


def edit_modify_operand_const(func, rng) -> bool:
    sites = [(blk, i) for blk in func.blocks
             for i, ins in enumerate(blk.instrs)
             if isinstance(ins, BinOp) and isinstance(ins.rhs, Const)
             and ins.rhs.rclass is RegClass.INT]
    if not sites:
        return False
    blk, i = rng.choice(sites)
    blk.instrs[i].rhs = Const(blk.instrs[i].rhs.value + rng.randrange(1, 5))
    return True


def edit_insert_dead(func, rng) -> bool:
    blk = rng.choice(func.blocks)
    blk.instrs.insert(rng.randrange(len(blk.instrs)),
                      ConstInst(func.new_vreg(), rng.randrange(64)))
    return True


def edit_redefine(func, rng) -> bool:
    sites = [(blk, i, d) for blk in func.blocks
             for i, ins in enumerate(blk.instrs)
             for d in ins.defs()
             if isinstance(d, VReg) and d.rclass is RegClass.INT
             and not d.no_spill]
    if not sites:
        return False
    blk, i, d = rng.choice(sites)
    blk.instrs.insert(i + 1, BinOp("add", d, d, Const(rng.randrange(1, 8))))
    return True


def edit_delete_store(func, rng) -> bool:
    sites = [(blk, i) for blk in func.blocks
             for i, ins in enumerate(blk.instrs) if isinstance(ins, Store)]
    if not sites:
        return False
    blk, i = rng.choice(sites)
    del blk.instrs[i]
    return True


def edit_split_block(func, rng) -> bool:
    cands = [b for b in func.blocks if len(b.instrs) >= 2]
    if not cands:
        return False
    blk = rng.choice(cands)
    at = rng.randrange(1, len(blk.instrs))
    labels = {b.label for b in func.blocks}
    n = 0
    while f"split{n}" in labels:
        n += 1
    label = f"split{n}"
    tail = blk.instrs[at:]
    del blk.instrs[at:]
    blk.instrs.append(Jump(label))
    func.blocks.insert(func.blocks.index(blk) + 1, BasicBlock(label, tail))
    return True


def edit_merge_blocks(func, rng) -> bool:
    preds: dict[str, int] = {}
    for b in func.blocks:
        for t in b.instrs[-1].block_targets():
            preds[t] = preds.get(t, 0) + 1
    by_label = {b.label: b for b in func.blocks}
    entry = func.blocks[0].label
    cands = []
    for b in func.blocks:
        term = b.instrs[-1]
        if (isinstance(term, Jump) and term.target != b.label
                and term.target != entry and preds.get(term.target) == 1):
            cands.append((b, by_label[term.target]))
    if not cands:
        return False
    b, t = rng.choice(cands)
    b.instrs = b.instrs[:-1] + t.instrs
    func.blocks.remove(t)
    return True


EDIT_OPS = [
    edit_modify_const,
    edit_modify_operand_const,
    edit_insert_dead,
    edit_redefine,
    edit_delete_store,
    edit_split_block,
    edit_merge_blocks,
]


def run_chain(versions, machine, mode, allocator=None):
    """Allocate each version through one session; returns the outputs."""
    allocator = allocator or ChaitinAllocator()
    options = AllocationOptions(incremental_edits=mode)
    session, outs = None, []
    for func in versions:
        out = allocate_function_incremental(
            session, func, machine, allocator, options=options)
        session = out.session
        outs.append(out)
    return outs


class TestRandomEditScripts:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 5000),
           script=st.lists(st.integers(0, len(EDIT_OPS) - 1),
                           min_size=1, max_size=4))
    def test_validate_mode_accepts_random_chains(self, profile, seed,
                                                 script):
        """Patched analyses == rebuilt analyses, phase by phase, and the
        allocation is byte-identical — for every prefix of a random edit
        chain (validate mode raises on any divergence)."""
        base = generate_function("edit", profile, seed)
        rng = random.Random(seed ^ 0xED17)
        versions = [base]
        for op in script:
            nxt = clone_function(versions[-1])
            EDIT_OPS[op](nxt, rng)
            validate_function(nxt)
            versions.append(nxt)
        try:
            outs = run_chain(versions, make_machine(16), "validate")
        except AllocationError as err:
            if "pressure cannot be met" in str(err):
                assume(False)
            raise
        assert outs[0].path == "new"
        assert all(o.path in ("value", "struct", "rebuild")
                   for o in outs[1:])

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 5000),
           script=st.lists(st.integers(0, len(EDIT_OPS) - 1),
                           min_size=1, max_size=3))
    def test_modes_agree_on_random_chains(self, profile, seed, script):
        """off/on chains print identically version for version."""
        base = generate_function("edit", profile, seed)
        rng = random.Random(seed)
        versions = [base]
        for op in script:
            nxt = clone_function(versions[-1])
            EDIT_OPS[op](nxt, rng)
            versions.append(nxt)
        machine = make_machine(16)
        try:
            on = run_chain(versions, machine, "on")
            off = run_chain(versions, machine, "off")
        except AllocationError as err:
            if "pressure cannot be met" in str(err):
                assume(False)
            raise
        from repro.service.protocol import stats_to_dict

        for a, b in zip(on, off):
            assert print_function(a.result.func) \
                == print_function(b.result.func)
            assert stats_to_dict(a.result.stats) \
                == stats_to_dict(b.result.stats)
            assert a.cycles.total == b.cycles.total


class TestModeAndBackendIdentity:
    """One deterministic chain, every mode x dataflow backend."""

    def versions(self):
        profile = BenchmarkProfile(name="edit", stmts=24, int_pool=6,
                                   float_pool=2, branch_prob=0.2,
                                   loop_prob=0.2, store_prob=0.12,
                                   paired_prob=0.3, max_params=2)
        base = generate_function("edit", profile, 7)
        rng = random.Random(7)
        versions = [base]
        for op in (edit_modify_const, edit_insert_dead, edit_split_block,
                   edit_redefine, edit_modify_const):
            nxt = clone_function(versions[-1])
            assert op(nxt, rng)
            validate_function(nxt)
            versions.append(nxt)
        return versions

    def test_identical_across_modes_and_backends(self, monkeypatch):
        from repro.analysis.matrix import have_numpy

        backends = ["int"] + (["numpy"] if have_numpy() else [])
        machine = make_machine(12)
        versions = self.versions()
        runs = {}
        for backend in backends:
            monkeypatch.setenv("REPRO_DATAFLOW", backend)
            for mode in ("off", "on", "validate"):
                outs = run_chain(versions, machine, mode)
                runs[(backend, mode)] = [
                    print_function(o.result.func) for o in outs]
        want = runs[(backends[0], "off")]
        for key, got in runs.items():
            assert got == want, f"{key} diverged from (int, off)"

    def test_paths_taken(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATAFLOW", "int")
        outs = run_chain(self.versions(), make_machine(12), "on")
        # const edit -> value patch; dead insert / split / redefine ->
        # structural; final const edit -> value patch again.
        assert [o.path for o in outs] \
            == ["new", "value", "struct", "struct", "struct", "value"]


class TestSessionStore:
    def put(self, store, digest):
        store.put(digest, ModuleSession(digest=digest, machine_key="mk",
                                        functions={}))

    def test_lru_eviction(self):
        store = SessionStore(capacity=2)
        for d in ("a", "b", "c"):
            self.put(store, d)
        assert len(store) == 2
        assert store.get("a") is None
        assert store.get("c") is not None
        snap = store.snapshot()
        assert snap["evictions"] == 1

    def test_get_refreshes_recency(self):
        store = SessionStore(capacity=2)
        self.put(store, "a")
        self.put(store, "b")
        assert store.get("a") is not None
        self.put(store, "c")  # evicts b, not a
        assert store.get("a") is not None
        assert store.get("b") is None

    def test_machine_key_mismatch_is_miss(self):
        store = SessionStore(capacity=2)
        self.put(store, "a")
        assert store.get("a", machine_key="other") is None
        assert store.get("a", machine_key="mk") is not None

    def test_session_digest_normalization(self):
        from repro.service.protocol import MachineSpec

        machine = MachineSpec(regs=8).build()
        ir = "func f(%p0) -> value {\nentry:\n  ret %p0\n}"
        assert session_digest(ir, machine) == session_digest(ir, machine)
        assert session_digest(ir, machine) \
            != session_digest(ir.replace("%p0)", "%p1)"), machine)


IR = """func acc(%p0, %p1) -> value {
entry:
  %lim = 10
  %acc = 0
  jump loop
loop:
  %x = load [%p0+0]
  %acc = add %acc, %x
  %p0 = add %p0, 4
  %c = cmplt %acc, %lim
  branch %c, loop, done
done:
  ret %acc
}
"""


def delta_request(rid, ir, base):
    from repro.service.protocol import AllocationRequest, MachineSpec

    return AllocationRequest(id=rid, ir=ir, allocator="chaitin",
                             machine=MachineSpec(regs=8), base_digest=base)


def full_request(rid, ir):
    from repro.service.protocol import AllocationRequest, MachineSpec

    return AllocationRequest(id=rid, ir=ir, allocator="chaitin",
                             machine=MachineSpec(regs=8))


class TestDeltaWirePath:
    def run(self, scheduler, request):
        future = scheduler.submit(request)
        while not future.done():
            scheduler.run_once()
        return future.result()

    def test_chain_start_matches_full_path(self):
        from repro.service.cache import ResultCache
        from repro.service.scheduler import Scheduler, execute_request

        scheduler = Scheduler(cache=ResultCache())
        r0 = self.run(scheduler, delta_request("d0", IR, ""))
        assert r0.ok and r0.session_digest
        full = execute_request(full_request("f0", IR))
        assert r0.code == full.code
        assert r0.result_digest == full.result_digest
        assert scheduler.metrics.counters["delta_requests"] == 1

    def test_edit_chain_token_stable_and_results_exact(self):
        from repro.service.cache import ResultCache
        from repro.service.scheduler import Scheduler, execute_request

        scheduler = Scheduler(cache=ResultCache())
        r0 = self.run(scheduler, delta_request("d0", IR, ""))
        token = r0.session_digest
        ir1 = IR.replace("%lim = 10", "%lim = 99")          # value edit
        ir2 = ir1.replace("  %acc = add %acc, %x",
                          "  %acc = add %acc, %x\n  %acc = add %acc, 1")
        prints = []
        for i, ir in enumerate((ir1, ir2)):
            r = self.run(scheduler, delta_request(f"d{i+1}", ir, token))
            assert r.ok and r.session_digest == token
            prints.append(r)
        counters = scheduler.metrics.counters
        assert counters["session_hits"] == 2
        assert counters["session_patches_value"] >= 1
        assert counters["session_patches_struct"] >= 1
        # Byte-identical to the full path, digest included.
        for r, ir in zip(prints, (ir1, ir2)):
            full = execute_request(full_request("f", ir))
            assert r.code == full.code
            assert r.result_digest == full.result_digest

    def test_unknown_base_falls_back_and_adopts_token(self):
        from repro.service.cache import ResultCache
        from repro.service.scheduler import Scheduler, execute_request

        scheduler = Scheduler(cache=ResultCache())
        token = "f" * 16
        r = self.run(scheduler, delta_request("d0", IR, token))
        assert r.ok
        # The fresh session is stored under the client's token so the
        # chain stabilizes on it.
        assert r.session_digest == token
        assert scheduler.metrics.counters["session_misses"] == 1
        full = execute_request(full_request("f0", IR))
        assert r.result_digest == full.result_digest
        again = self.run(scheduler, delta_request("d1", IR, token))
        assert again.ok
        assert scheduler.metrics.counters["session_hits"] == 1

    def test_delta_wire_round_trip(self):
        from repro.service.protocol import AllocationRequest

        req = delta_request("w", IR, "abc123")
        wire = req.to_wire()
        assert wire["type"] == "allocate_delta"
        assert wire["base"] == "abc123"
        assert AllocationRequest.from_wire(wire) == req
        full = full_request("w2", IR)
        assert full.to_wire()["type"] == "allocate"
        assert "base" not in full.to_wire()

    def test_delta_requires_protocol_v2_and_ir(self):
        from repro.errors import ServiceError

        req = delta_request("v", IR, "")
        req.protocol = 1
        with pytest.raises(ServiceError):
            req.validate()
        bench = delta_request("b", IR, "")
        bench.ir = None
        bench.bench = "db"
        with pytest.raises(ServiceError):
            bench.validate()

    def test_session_digest_excluded_from_result_payload(self):
        from repro.service.cache import ResultCache
        from repro.service.scheduler import Scheduler

        scheduler = Scheduler(cache=ResultCache())
        r = self.run(scheduler, delta_request("d0", IR, ""))
        stripped = r.for_cache()
        assert stripped.session_digest == ""
        assert stripped.result_digest == r.result_digest


class TestClusterDeltaAffinity:
    def test_edit_chain_pins_to_one_shard(self):
        from repro.cluster.router import ClusterRouter, ClusterServerThread
        from repro.cluster.shards import ShardHandle
        from repro.service.client import ServiceClient
        from repro.service.scheduler import Scheduler
        from repro.service.server import ServerThread

        shards, handles = [], []
        try:
            for index in range(2):
                scheduler = Scheduler(cache=None)
                server = ServerThread(scheduler)
                host, port = server.start()
                shards.append((scheduler, server))
                handles.append(ShardHandle(index, host, port))
            router = ClusterRouter(handles, hedge_s=30.0)
            thread = ClusterServerThread(router, "127.0.0.1", 0)
            host, port = thread.start()
            try:
                client = ServiceClient(host, port)
                r0 = client.allocate(delta_request("c0", IR, ""))
                assert r0.ok and r0.session_digest
                token = r0.session_digest
                for i in range(3):
                    ir = IR.replace("%lim = 10", f"%lim = {11 + i}")
                    r = client.allocate(delta_request(f"c{i+1}", ir, token))
                    assert r.ok and r.session_digest == token
            finally:
                thread.stop()
            hits = sum(s.metrics.counters["session_hits"]
                       for s, _ in shards)
            # The token routes every edit to one shard; after at most
            # one miss (chain start may have landed elsewhere) the
            # session lives where the edits go.
            assert hits >= 2
        finally:
            for _scheduler, server in shards:
                server.stop()
