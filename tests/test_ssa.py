"""SSA construction, destruction, DCE: invariants plus semantics."""

from repro.cfg.analysis import build_cfg
from repro.ir.clone import clone_function
from repro.ir.instructions import Move, Phi
from repro.ir.validate import validate_function
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.ssa.construct import to_ssa
from repro.ssa.dce import eliminate_dead_code
from repro.ssa.destruct import from_ssa, split_critical_edges

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_diamond,
    build_straightline,
)


def phis_of(func):
    return [i for _, i in func.instructions() if isinstance(i, Phi)]


def same_semantics(before, after, args):
    ref = run_function(clone_function(before), args, memory=Memory())
    got = run_function(clone_function(after), args, memory=Memory())
    assert ref.value == got.value


class TestConstruction:
    def test_diamond_gets_one_phi(self):
        func = build_diamond()
        to_ssa(func)
        validate_function(func, ssa=True)
        assert len(phis_of(func)) == 1
        (phi,) = phis_of(func)
        assert set(phi.incoming) == {"then", "else_"}

    def test_loop_gets_phis_for_carried_values(self):
        func = build_counted_loop()
        to_ssa(func)
        validate_function(func, ssa=True)
        head_phis = func.block("head").phis()
        assert len(head_phis) == 2  # counter and accumulator

    def test_straightline_needs_no_phis(self):
        func = build_straightline()
        to_ssa(func)
        validate_function(func, ssa=True)
        assert not phis_of(func)

    def test_params_renamed(self):
        func = build_diamond()
        old_params = list(func.params)
        to_ssa(func)
        assert func.params != old_params

    def test_pruned_no_dead_phis(self):
        # A variable assigned in both arms but never used afterwards
        # must not get a phi.
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("f", n_params=1)
        dead = b.const(0)
        cond = b.binop("cmplt", b.param(0), Const(5))
        b.branch(cond, "t", "e")
        b.block("t")
        b.const(1, dst=dead)
        b.jump("m")
        b.block("e")
        b.const(2, dst=dead)
        b.jump("m")
        b.block("m")
        b.ret(b.param(0))
        func = b.finish()
        to_ssa(func)
        assert not phis_of(func)

    def test_semantics_preserved(self):
        for build, args in [
            (build_diamond, [3, 9]),
            (build_counted_loop, [7]),
            (build_call_heavy, [2, 5]),
        ]:
            before = build()
            after = clone_function(before)
            to_ssa(after)
            same_semantics(before, after, args)

    def test_use_def_same_instruction(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("f", n_params=1)
        v = b.move(b.param(0))
        b.binop("add", v, Const(1), dst=v)  # v = v + 1
        b.ret(v)
        func = b.finish()
        to_ssa(func)
        validate_function(func, ssa=True)
        add = func.entry.instrs[1]
        assert add.dst != add.lhs  # the two occurrences renamed apart


class TestDestruction:
    def test_no_phis_remain(self):
        func = build_diamond()
        to_ssa(func)
        from_ssa(func)
        assert not phis_of(func)
        validate_function(func)

    def test_copies_inserted(self):
        func = build_diamond()
        to_ssa(func)
        n_before = func.instruction_count()
        from_ssa(func)
        moves = [i for _, i in func.instructions() if isinstance(i, Move)]
        # one carrier copy per phi arm plus one at the phi site
        assert len(moves) >= 3
        assert func.instruction_count() > n_before

    def test_roundtrip_semantics(self):
        for build, args in [
            (build_diamond, [3, 9]),
            (build_diamond, [9, 3]),
            (build_counted_loop, [7]),
            (build_call_heavy, [2, 5]),
        ]:
            before = build()
            after = clone_function(before)
            to_ssa(after)
            from_ssa(after)
            same_semantics(before, after, args)

    def test_critical_edge_split(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        # entry branches to (loop head, exit); the loop head has two
        # preds -> the entry->head edge is critical.
        b = IRBuilder("f", n_params=1)
        cond = b.binop("cmplt", b.param(0), Const(5))
        b.branch(cond, "head", "exit")
        b.block("head")
        c2 = b.binop("cmplt", b.param(0), Const(3))
        b.branch(c2, "head", "exit")
        b.block("exit")
        b.ret(b.param(0))
        func = b.finish()
        n_blocks = len(func.blocks)
        split = split_critical_edges(func)
        assert split >= 3
        assert len(func.blocks) == n_blocks + split
        validate_function(func)


class TestDCE:
    def test_removes_dead_arithmetic(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("f", n_params=1)
        b.add(b.param(0), Const(1))  # dead
        live = b.add(b.param(0), Const(2))
        b.ret(live)
        func = b.finish()
        to_ssa(func)
        removed = eliminate_dead_code(func)
        assert removed >= 1

    def test_keeps_stores_and_calls(self):
        func = build_call_heavy()
        to_ssa(func)
        from repro.ir.instructions import Call

        calls_before = sum(isinstance(i, Call)
                           for _, i in func.instructions())
        eliminate_dead_code(func)
        calls_after = sum(isinstance(i, Call)
                          for _, i in func.instructions())
        assert calls_before == calls_after

    def test_drops_dead_call_result(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("f", n_params=1)
        b.call("helper", [b.param(0)], returns=True)  # result unused
        b.ret(b.param(0))
        func = b.finish()
        to_ssa(func)
        eliminate_dead_code(func)
        from repro.ir.instructions import Call

        (call,) = [i for _, i in func.instructions()
                   if isinstance(i, Call)]
        assert call.dst is None

    def test_cyclic_dead_phis_removed(self):
        # A loop-carried value never observed outside the loop.
        from repro.ir.builder import IRBuilder
        from repro.ir.values import Const

        b = IRBuilder("f", n_params=1)
        dead = b.const(1)
        i = b.const(0)
        b.jump("head")
        b.block("head")
        b.binop("add", dead, dead, dst=dead)  # only feeds itself
        b.binop("add", i, Const(1), dst=i)
        cond = b.binop("cmplt", i, Const(3))
        b.branch(cond, "head", "exit")
        b.block("exit")
        b.ret(b.param(0))
        func = b.finish()
        to_ssa(func)
        eliminate_dead_code(func)
        adds = [i for _, i in func.instructions()
                if getattr(i, "op", None) == "add"]
        assert len(adds) == 1  # only the induction variable's add survives

    def test_semantics_preserved(self):
        before = build_call_heavy()
        after = clone_function(before)
        to_ssa(after)
        eliminate_dead_code(after)
        same_semantics(before, after, [4, 6])
