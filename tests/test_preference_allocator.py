"""The integrated preference-directed allocator, including the paper's
Figure 7 walkthrough end-to-end."""

import pytest

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.errors import AllocationError
from repro.ir.clone import clone_function
from repro.ir.instructions import Load, Move
from repro.ir.values import PReg, RegClass
from repro.regalloc.base import allocate_function
from repro.regalloc.verify import verify_allocation
from repro.sim.cycles import estimate_cycles
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine, high_pressure, make_machine

from conftest import (
    build_call_heavy,
    build_counted_loop,
    build_figure7,
    build_paired_loads,
)


class TestFigure7EndToEnd:
    """Figure 7(g)/(h): v0->r1, v1->r2, v2->r3, v3->r1, v4->r3; both
    copies eliminated; the paired load enabled."""

    def setup_method(self):
        self.machine = figure7_machine()
        func = build_figure7()
        lower_function(func, self.machine)
        self.func = func
        self.result = allocate_function(
            func, self.machine, PreferenceDirectedAllocator()
        )

    def _reg_index(self, name_prefix):
        """Register index holding a value, located via its defining op."""
        return None

    def test_all_moves_eliminated(self):
        stats = self.result.stats
        assert stats.moves_before == 3  # param move, v3=v0, arg0=v3
        assert stats.moves_eliminated == 3

    def test_no_spills(self):
        assert self.result.stats.spill_instructions == 0

    def test_paired_load_enabled(self):
        report = estimate_cycles(self.func, self.machine)
        assert report.paired_loads_fused == 1

    def test_paper_register_assignment(self):
        # Reconstruct who ended up where from the final code.
        loop = self.func.block("L1")
        loads = [i for i in loop.instrs if isinstance(i, Load)]
        v1_reg, v2_reg = loads[0].dst, loads[1].dst
        assert (v1_reg.index, v2_reg.index) == (2, 3)      # r2, r3
        add = next(i for i in loop.instrs
                   if getattr(i, "op", None) == "add"
                   and not isinstance(i, Load))
        assert add.dst.index == 3                           # v4 -> r3
        entry_load = next(i for _, i in self.func.instructions()
                          if isinstance(i, Load))
        assert entry_load.dst.index == 1                    # v0 -> r1

    def test_v4_in_nonvolatile(self):
        regfile = self.machine.file(RegClass.INT)
        loop = self.func.block("L1")
        add = next(i for i in loop.instrs
                   if getattr(i, "op", None) == "add")
        assert not regfile.is_volatile(add.dst)

    def test_verifies(self):
        verify_allocation(self.func, self.machine)


class TestConfigurations:
    @pytest.mark.parametrize("config,name", [
        (PreferenceConfig.full(), "full-preferences"),
        (PreferenceConfig.only_coalescing(), "only-coalescing"),
    ])
    def test_names(self, config, name):
        assert PreferenceDirectedAllocator(config).name == name

    def test_custom_name(self):
        alloc = PreferenceDirectedAllocator(name="custom")
        assert alloc.name == "custom"

    def test_trace_collected_when_asked(self):
        machine = make_machine(8)
        func = build_call_heavy()
        lower_function(func, machine)
        alloc = PreferenceDirectedAllocator(keep_trace=True)
        allocate_function(func, machine, alloc)
        assert alloc.last_trace is not None
        assert alloc.last_trace.steps

    def test_no_trace_by_default(self):
        machine = make_machine(8)
        func = build_call_heavy()
        lower_function(func, machine)
        alloc = PreferenceDirectedAllocator()
        allocate_function(func, machine, alloc)
        assert alloc.last_trace is None


class TestBehaviour:
    def test_call_crossing_value_goes_nonvolatile(self):
        machine = make_machine(8)
        func = build_call_heavy()
        lower_function(func, machine)
        allocate_function(func, machine, PreferenceDirectedAllocator())
        report = estimate_cycles(func, machine)
        # the `keep` value must not be caller-saved around both calls
        assert report.caller_save_cycles == 0.0

    def test_paired_loads_fused(self):
        machine = make_machine(8)
        func = build_paired_loads()
        lower_function(func, machine)
        allocate_function(func, machine, PreferenceDirectedAllocator())
        assert estimate_cycles(func, machine).paired_loads_fused == 1

    def test_paired_loads_ignored_without_preference(self):
        machine = make_machine(8)
        func = build_paired_loads()
        lower_function(func, machine)
        allocate_function(
            func, machine,
            PreferenceDirectedAllocator(PreferenceConfig(
                coalesce=True, dedicated=True, paired_loads=False,
                volatility=True, byte_loads=True,
            )),
        )
        # fusion may still happen by luck, but the preference machinery
        # must not be consulted; just assert a valid allocation
        verify_allocation(func, machine)

    def test_byte_load_lands_in_capable_register(self):
        from repro.ir.builder import IRBuilder

        machine = high_pressure()
        b = IRBuilder("f", n_params=1)
        v = b.load(b.param(0), 0, width="byte")
        w = b.add(v, v)
        b.ret(w)
        func = b.finish()
        lower_function(func, machine)
        allocate_function(func, machine, PreferenceDirectedAllocator())
        report = estimate_cycles(func, machine)
        assert report.byte_penalty_cycles == 0.0

    def test_loop_allocates_cleanly(self):
        machine = make_machine(4)
        func = build_counted_loop()
        lower_function(func, machine)
        result = allocate_function(func, machine,
                                   PreferenceDirectedAllocator())
        verify_allocation(func, machine)
        assert result.stats.spill_instructions == 0

    def test_impossible_pressure_spills_rather_than_fails(self):
        # More simultaneously-live values than registers: must spill,
        # not raise.
        from repro.ir.builder import IRBuilder

        machine = make_machine(4)
        b = IRBuilder("f", n_params=0)
        values = [b.const(i) for i in range(8)]
        acc = values[0]
        for v in values[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        func = b.finish()
        lower_function(func, machine)
        result = allocate_function(func, machine,
                                   PreferenceDirectedAllocator())
        verify_allocation(func, machine)
        assert result.stats.spill_instructions > 0
