"""The appendix cost model, validated against every number printed in
the paper's Figure 7.

Figure 7(c) gives: v4's non-volatile preference strength **28**; v3's
coalesce edge to v0 at **40** (volatile target) / **38** (non-volatile);
the v1–v2 sequential edges at **50 / 48**.  These tests reconstruct the
paper's program and assert our model reproduces each value exactly.
"""

import pytest

from repro.core.costs import (
    CALLEE_SAVE_COST,
    SAVE_RESTORE_COST,
    CostModel,
    Strength,
    inst_cost,
)
from repro.ir.instructions import Call, Load, Move, Ret
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine

from conftest import build_figure7


@pytest.fixture(scope="module")
def fig7():
    func = build_figure7()
    machine = figure7_machine()
    lower_function(func, machine)
    costs = CostModel(func, machine)
    names = {}
    for v in func.vregs():
        names[str(v)] = v
    # v1..v6 are the builder's names for the paper's v0..v4 and the
    # branch condition; map them to the paper's names.
    return {
        "machine": machine,
        "func": func,
        "costs": costs,
        "v0": names["%v1"],
        "v1": names["%v2"],
        "v2": names["%v3"],
        "v3": names["%v4"],
        "v4": names["%v5"],
    }


class TestInstCost:
    def test_loads_cost_two(self):
        from repro.ir.values import VReg

        assert inst_cost(Load(VReg(0), VReg(1), 0)) == 2

    def test_call_undefined_costs_zero(self):
        assert inst_cost(Call("f")) == 0

    def test_everything_else_one(self):
        from repro.ir.values import VReg

        assert inst_cost(Move(VReg(0), VReg(1))) == 1
        assert inst_cost(Ret()) == 1


class TestFigure7SpillCosts:
    def test_v4(self, fig7):
        # Spill_Cost(v4) = store at i4 (freq 10) + load at i7 (freq 10)
        assert fig7["costs"].spill_cost(fig7["v4"]) == 30

    def test_v3(self, fig7):
        assert fig7["costs"].spill_cost(fig7["v3"]) == 30

    def test_v0(self, fig7):
        # defs: i0 (freq 1) + i7 (freq 10) = 11; uses: i1,i2,i3,i8 = 80
        assert fig7["costs"].spill_cost(fig7["v0"]) == 91

    def test_op_cost_v4(self, fig7):
        # i4 (cost 1, freq 10) + i7 (cost 1, freq 10)
        assert fig7["costs"].op_cost(fig7["v4"]) == 20

    def test_mem_cost_v4(self, fig7):
        assert fig7["costs"].mem_cost(fig7["v4"]) == 50


class TestFigure7Strengths:
    def test_v4_nonvolatile_strength_is_28(self, fig7):
        # THE number the paper prints next to v4.
        assert fig7["costs"].strength_nonvolatile(fig7["v4"]) == 28

    def test_v4_volatile_strength_is_0(self, fig7):
        # v4 crosses the call at freq 10: 30 - 3*10.
        assert fig7["costs"].strength_volatile(fig7["v4"]) == 0

    def test_v3_coalesce_strengths_40_38(self, fig7):
        costs = fig7["costs"]
        v3 = fig7["v3"]
        mv = next(
            i for _, i in fig7["func"].instructions()
            if isinstance(i, Move) and i.dst == v3
        )
        saving = costs.move_saving(v3, mv)
        assert saving == 10
        strength = costs.placement_strength(v3, saving)
        assert strength.vol == 40
        assert strength.nonvol == 38

    def test_v1_sequential_strengths_50_48(self, fig7):
        costs = fig7["costs"]
        v1 = fig7["v1"]
        load = next(
            i for _, i in fig7["func"].instructions()
            if isinstance(i, Load) and i.dst == v1
        )
        saving = costs.paired_load_saving(v1, load)
        assert saving == 20  # the 2-cycle load at freq 10
        strength = costs.placement_strength(v1, saving)
        assert strength.vol == 50
        assert strength.nonvol == 48

    def test_cross_freq_v4(self, fig7):
        assert fig7["costs"].cross_freq(fig7["v4"]) == 10
        assert fig7["costs"].crosses_calls(fig7["v4"])

    def test_v1_does_not_cross(self, fig7):
        assert not fig7["costs"].crosses_calls(fig7["v1"])


class TestStrengthType:
    def test_scalar(self):
        s = Strength.scalar(5.0)
        assert s.vol == s.nonvol == 5.0
        assert str(s) == "5"

    def test_pair_formatting(self):
        assert str(Strength(40, 38)) == "vol:40, n-vol:38"

    def test_best_worst(self):
        s = Strength(40, 38)
        assert s.best == 40 and s.worst == 38

    def test_for_reg(self, fig7):
        machine = fig7["machine"]
        regs = machine.file(fig7["v0"].rclass).regs
        s = Strength(40, 38)
        assert s.for_reg(machine, regs[0]) == 40   # r1 volatile
        assert s.for_reg(machine, regs[2]) == 38   # r3 non-volatile


class TestConstants:
    def test_paper_values(self):
        assert SAVE_RESTORE_COST == 3
        assert CALLEE_SAVE_COST == 2
