"""Cloning: deep independence of instructions, shared immutable values."""

from repro.ir.clone import clone_function, clone_module
from repro.ir.function import Module
from repro.ir.instructions import Move
from repro.ir.printer import print_function
from repro.ir.values import VReg

from conftest import build_call_heavy, build_diamond, build_straightline


class TestCloneFunction:
    def test_text_identical(self):
        func = build_diamond()
        assert print_function(clone_function(func)) == print_function(func)

    def test_instructions_are_fresh_objects(self):
        func = build_straightline()
        copy = clone_function(func)
        originals = {id(i) for _, i in func.instructions()}
        for _, instr in copy.instructions():
            assert id(instr) not in originals

    def test_mutating_clone_leaves_original(self):
        func = build_straightline()
        copy = clone_function(func)
        before = print_function(func)
        for blk in copy.blocks:
            for instr in blk.instrs:
                instr.replace({v: VReg(999) for v in instr.used_regs()})
        assert print_function(func) == before

    def test_counters_preserved(self):
        func = build_straightline()
        func.new_slot()
        copy = clone_function(func)
        assert copy.next_vreg_id == func.next_vreg_id
        assert copy.next_slot == func.next_slot
        assert copy.returns_value == func.returns_value

    def test_calls_cloned_with_lists(self):
        func = build_call_heavy()
        copy = clone_function(func)
        from repro.ir.instructions import Call

        orig_calls = [i for _, i in func.instructions()
                      if isinstance(i, Call)]
        copy_calls = [i for _, i in copy.instructions()
                      if isinstance(i, Call)]
        copy_calls[0].args.append(VReg(999))
        assert len(orig_calls[0].args) != len(copy_calls[0].args)


class TestClonePrintByteIdentity:
    """clone -> print must be byte-identical to the original print."""

    def test_paired_loads_print_identical(self):
        from repro.core.pairs import find_paired_loads
        from repro.ir.function import BasicBlock, Function
        from repro.ir.instructions import Load, Ret

        func = Function("pairs", params=[VReg(0)], blocks=[BasicBlock("e", [
            Load(VReg(1), VReg(0), 0),
            Load(VReg(2), VReg(0), 4),
            Load(VReg(3), VReg(0), 64, width="byte"),
            Ret(VReg(1)),
        ])])
        func.returns_value = True
        copy = clone_function(func)
        assert print_function(copy) == print_function(func)
        # The clone's pair candidates are its own instructions, and the
        # group structure (who pairs with whom) is preserved.
        orig_pairs = find_paired_loads(func)
        copy_pairs = find_paired_loads(copy)
        assert len(orig_pairs) == len(copy_pairs) == 1
        assert copy_pairs[0].first is copy.entry.instrs[0]
        assert copy_pairs[0].second is not orig_pairs[0].second

    def test_lowered_call_and_ret_print_identical(self):
        """Calls/rets carry reg_uses/reg_defs after lowering; the clone
        must reproduce them byte-for-byte and own fresh lists."""
        from repro.ir.instructions import Call, Ret
        from repro.pipeline import prepare_function
        from repro.target import make_machine

        func = build_call_heavy()
        prepare_function(func, make_machine(8))
        copy = clone_function(func)
        assert print_function(copy) == print_function(func)
        for (_, a), (_, b) in zip(func.instructions(), copy.instructions()):
            if isinstance(a, Call):
                assert a.reg_uses == b.reg_uses
                assert a.reg_defs == b.reg_defs
                assert a.reg_uses is not b.reg_uses
                assert a.reg_defs is not b.reg_defs
            if isinstance(a, Ret):
                assert a.reg_uses == b.reg_uses
                assert a.reg_uses is not b.reg_uses

    def test_prepared_benchmark_print_identical(self):
        from repro.pipeline import prepare_module
        from repro.target import middle_pressure
        from repro.workloads import make_benchmark

        machine = middle_pressure()
        prepared = prepare_module(make_benchmark("compress"), machine)
        for func in prepared.functions:
            assert print_function(clone_function(func)) \
                == print_function(func)


class TestCloneModule:
    def test_all_functions_cloned(self):
        module = Module("m")
        module.add(build_straightline())
        module.add(build_diamond())
        copy = clone_module(module)
        assert [f.name for f in copy.functions] == ["straight", "diamond"]
        assert copy.functions[0] is not module.functions[0]


class TestCloneAfterAllocation:
    def test_spill_instructions_cloneable(self):
        from repro.ir.function import BasicBlock, Function
        from repro.ir.instructions import Ret, SpillLoad, SpillStore

        func = Function("f", blocks=[BasicBlock("e", [
            SpillStore(0, VReg(1)), SpillLoad(VReg(2), 0), Ret()
        ])])
        copy = clone_function(func)
        assert isinstance(copy.entry.instrs[0], SpillStore)
        assert copy.entry.instrs[1].slot == 0
