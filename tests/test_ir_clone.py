"""Cloning: deep independence of instructions, shared immutable values."""

from repro.ir.clone import clone_function, clone_module
from repro.ir.function import Module
from repro.ir.instructions import Move
from repro.ir.printer import print_function
from repro.ir.values import VReg

from conftest import build_call_heavy, build_diamond, build_straightline


class TestCloneFunction:
    def test_text_identical(self):
        func = build_diamond()
        assert print_function(clone_function(func)) == print_function(func)

    def test_instructions_are_fresh_objects(self):
        func = build_straightline()
        copy = clone_function(func)
        originals = {id(i) for _, i in func.instructions()}
        for _, instr in copy.instructions():
            assert id(instr) not in originals

    def test_mutating_clone_leaves_original(self):
        func = build_straightline()
        copy = clone_function(func)
        before = print_function(func)
        for blk in copy.blocks:
            for instr in blk.instrs:
                instr.replace({v: VReg(999) for v in instr.used_regs()})
        assert print_function(func) == before

    def test_counters_preserved(self):
        func = build_straightline()
        func.new_slot()
        copy = clone_function(func)
        assert copy.next_vreg_id == func.next_vreg_id
        assert copy.next_slot == func.next_slot
        assert copy.returns_value == func.returns_value

    def test_calls_cloned_with_lists(self):
        func = build_call_heavy()
        copy = clone_function(func)
        from repro.ir.instructions import Call

        orig_calls = [i for _, i in func.instructions()
                      if isinstance(i, Call)]
        copy_calls = [i for _, i in copy.instructions()
                      if isinstance(i, Call)]
        copy_calls[0].args.append(VReg(999))
        assert len(orig_calls[0].args) != len(copy_calls[0].args)


class TestCloneModule:
    def test_all_functions_cloned(self):
        module = Module("m")
        module.add(build_straightline())
        module.add(build_diamond())
        copy = clone_module(module)
        assert [f.name for f in copy.functions] == ["straight", "diamond"]
        assert copy.functions[0] is not module.functions[0]


class TestCloneAfterAllocation:
    def test_spill_instructions_cloneable(self):
        from repro.ir.function import BasicBlock, Function
        from repro.ir.instructions import Ret, SpillLoad, SpillStore

        func = Function("f", blocks=[BasicBlock("e", [
            SpillStore(0, VReg(1)), SpillLoad(VReg(2), 0), Ret()
        ])])
        copy = clone_function(func)
        assert isinstance(copy.entry.instrs[0], SpillStore)
        assert copy.entry.instrs[1].slot == 0
