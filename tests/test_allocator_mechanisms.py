"""Mechanism-level tests for the baseline allocators: the Park–Moon undo,
the George–Appel freeze, the Lueh–Gross preference decision and active
spilling, and the shared driver's corner cases."""

import pytest

from repro.core import PreferenceDirectedAllocator
from repro.errors import AllocationError
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function
from repro.ir.values import Const
from repro.pipeline import prepare_function
from repro.regalloc import (
    AllocationOptions,
    Allocator,
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    RoundOutcome,
    allocate_function,
    verify_allocation,
)
from repro.sim.cycles import estimate_cycles
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import make_machine


def pressure_with_copies(n_copies=4, n_noise=6):
    """Copy-related values inside a high-pressure region: the coalesced
    node becomes uncolorable, exercising Park–Moon's undo."""
    b = IRBuilder("p", n_params=1)
    chain = [b.move(b.param(0))]
    for _ in range(n_copies - 1):
        chain.append(b.move(chain[-1]))
    noise = [b.add(b.param(0), Const(i)) for i in range(n_noise)]
    acc = chain[0]
    for v in chain[1:] + noise:
        acc = b.add(acc, v)
    b.ret(acc)
    return b.finish()


class TestParkMoonUndo:
    def test_undo_splits_rather_than_spills_everything(self):
        machine = make_machine(4)
        base = prepare_function(pressure_with_copies(), machine)
        f1, f2 = clone_function(base), clone_function(base)
        chaitin = allocate_function(f1, machine, ChaitinAllocator())
        pm = allocate_function(f2, machine, OptimisticCoalescingAllocator())
        verify_allocation(f2, machine)
        assert pm.stats.spill_instructions <= chaitin.stats.spill_instructions

    def test_semantics_after_undo(self):
        machine = make_machine(4)
        raw = pressure_with_copies()
        want = run_function(clone_function(raw), [10],
                            memory=Memory()).value
        func = prepare_function(raw, machine)
        allocate_function(func, machine, OptimisticCoalescingAllocator())
        got = run_function(func, [10], machine=machine,
                           memory=Memory()).value
        assert got == want


class TestIteratedFreeze:
    def test_copy_related_low_degree_eventually_simplified(self):
        # All nodes copy-related and uncoalescable moves force freezing.
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        u = b.add(t, b.param(0))
        v = b.move(u)
        w = b.add(v, u)          # v-u interfere? u used after v's def
        b.ret(w)
        func = prepare_function(b.finish(), make_machine(8))
        machine = make_machine(8)
        result = allocate_function(func, machine,
                                   IteratedCoalescingAllocator())
        verify_allocation(func, machine)
        assert result.stats.spill_instructions == 0

    def test_conservative_never_coalesces_into_spill(self):
        machine = make_machine(4)
        func = prepare_function(pressure_with_copies(), machine)
        result = allocate_function(func, machine,
                                   IteratedCoalescingAllocator())
        verify_allocation(func, machine)
        # conservative coalescing: no spill caused by merging
        assert result.stats.spill_instructions == 0 or \
            result.stats.coalesced_count >= 0  # structural smoke


class TestCallCostMechanisms:
    def build_many_crossers(self, n_values):
        b = IRBuilder("f", n_params=1)
        values = [b.add(b.param(0), Const(i)) for i in range(n_values)]
        for _ in range(3):
            b.call("helper", [b.param(0)])
        acc = values[0]
        for v in values[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        return b.finish()

    def test_preference_decision_caps_nonvolatile_claims(self):
        # More crossing values than non-volatile registers: the decision
        # must push the excess to volatile registers or memory without
        # failing.
        machine = make_machine(6)   # 3 nonvolatile
        func = prepare_function(self.build_many_crossers(8), machine)
        result = allocate_function(func, machine, CallCostAllocator())
        verify_allocation(func, machine)
        report = estimate_cycles(func, machine)
        assert report.callee_save_cycles <= 2 * 3  # at most 3 nonvol regs

    def test_active_spill_prefers_memory(self):
        # A dead-cheap value crossing three calls has benefit < 0 when
        # no non-volatile register is free.
        machine = make_machine(4)
        func = prepare_function(self.build_many_crossers(6), machine)
        result = allocate_function(func, machine, CallCostAllocator())
        verify_allocation(func, machine)
        # consistency: allocation completed within the round budget
        assert result.stats.rounds < 10


class TestDriver:
    def test_round_limit_raises(self):
        class NeverDone(Allocator):
            name = "never-done"

            def allocate_round(self, ctx):
                outcome = RoundOutcome()
                # nominate a fresh web every round: no fixed point
                for v in ctx.ig.vregs():
                    if not v.no_spill:
                        outcome.spilled.add(v)
                        return outcome
                outcome.assignment = {}
                return outcome

        machine = make_machine(8)
        func = prepare_function(pressure_with_copies(), machine)
        with pytest.raises(AllocationError, match="fixed point"):
            allocate_function(func, machine, NeverDone(),
                              AllocationOptions(max_rounds=3))

    def test_stats_rounds_counts_spill_iterations(self):
        machine = make_machine(4)
        func = prepare_function(pressure_with_copies(), machine)
        result = allocate_function(func, machine, BriggsAllocator())
        if result.stats.spill_instructions:
            assert result.stats.rounds >= 2

    def test_weighted_metrics_scale_with_loops(self):
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        b.jump("head")
        b.block("head")
        u = b.move(t)
        v = b.add(u, Const(1))
        cond = b.binop("cmplt", v, b.param(0))
        b.branch(cond, "head", "exit")
        b.block("exit")
        b.ret(v)
        machine = make_machine(8)
        func = prepare_function(b.finish(), machine)
        result = allocate_function(func, machine,
                                   PreferenceDirectedAllocator())
        stats = result.stats
        # loop-resident moves weigh 10x
        assert stats.moves_before_weighted > stats.moves_before

    def test_outcome_resolve_detects_alias_cycles(self):
        from repro.ir.values import VReg

        outcome = RoundOutcome()
        a, b_ = VReg(1), VReg(2)
        outcome.alias = {a: b_, b_: a}
        with pytest.raises(AllocationError, match="cycle"):
            outcome.resolve(a)

    def test_outcome_resolve_missing_color(self):
        from repro.ir.values import VReg

        with pytest.raises(AllocationError, match="no color"):
            RoundOutcome().resolve(VReg(1))
