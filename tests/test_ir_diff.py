"""Structural differ: raw/renumbered classification and the rename map."""

from types import SimpleNamespace

from repro.ir.diff import FunctionDelta, ValueEdit, diff_functions
from repro.ir.parser import parse_function
from repro.ir.values import Const, VReg


def parse(body: str, header: str = "func f(%p0, %p1) -> value"):
    return parse_function(f"{header} {{\n{body}\n}}")


BASE = """entry:
  %v2 = 10
  %v3 = add %p0, 1
  branch %v3, then, exit
then:
  %v4 = load [%p0+8]
  store [%p1+4] = %v4
  jump exit
exit:
  ret %v2"""


def diff_raw(new_body: str, base_body: str = BASE) -> FunctionDelta:
    return diff_functions(parse(base_body), parse(new_body))


class TestRawTransparent:
    def test_identical(self):
        delta = diff_raw(BASE)
        assert delta.identical and delta.transparent and delta.consistent
        assert not delta.value_edits
        # Survivors expose the identity rename over the matched region.
        base = parse(BASE)
        v2 = base.blocks[0].instrs[0].dst
        assert delta.rename[v2] == v2
        assert not delta.new_vregs and not delta.deleted_vregs

    def test_const_inst_value(self):
        delta = diff_raw(BASE.replace("%v2 = 10", "%v2 = 99"))
        assert delta.transparent and not delta.identical
        assert delta.value_edits == (
            ValueEdit("entry", 0, "value", 99, 10),)

    def test_binop_const_operand(self):
        delta = diff_raw(BASE.replace("add %p0, 1", "add %p0, 7"))
        (edit,) = delta.value_edits
        assert delta.transparent
        assert (edit.label, edit.index, edit.attr) == ("entry", 1, "rhs")
        assert edit.new == Const(7) and edit.old == Const(1)

    def test_opcode_swap(self):
        delta = diff_raw(BASE.replace("add %p0, 1", "sub %p0, 1"))
        (edit,) = delta.value_edits
        assert delta.transparent
        assert (edit.attr, edit.new, edit.old) == ("op", "sub", "add")

    def test_load_offset(self):
        delta = diff_raw(BASE.replace("load [%p0+8]", "load [%p0+12]"))
        (edit,) = delta.value_edits
        assert delta.transparent
        assert (edit.label, edit.attr, edit.new) == ("then", "offset", 12)

    def test_store_offset(self):
        delta = diff_raw(BASE.replace("[%p1+4]", "[%p1+16]"))
        (edit,) = delta.value_edits
        assert delta.transparent and edit.attr == "offset"

    def test_multiple_edits_in_block_order(self):
        new = BASE.replace("%v2 = 10", "%v2 = 0") \
                  .replace("add %p0, 1", "add %p0, 2")
        delta = diff_raw(new)
        assert [e.index for e in delta.value_edits] == [0, 1]


class TestRawStructural:
    def test_register_operand_change_touches(self):
        delta = diff_raw(BASE.replace("add %p0, 1", "add %p1, 1"))
        assert delta.touched_blocks == {"entry"}
        assert delta.structural and not delta.transparent
        assert not delta.value_edits

    def test_insertion_touches_via_length(self):
        new = BASE.replace("  jump exit", "  %v9 = add %v4, 1\n  jump exit")
        delta = diff_raw(new)
        assert delta.touched_blocks == {"then"}
        assert not delta.changed_edges
        # The inserted def is fresh; %v4 lives only in the touched
        # block, so it is conservatively dropped and rediscovered.
        assert {r.name for r in delta.new_vregs} == {"v4", "v9"}
        assert {r.name for r in delta.deleted_vregs} == {"v4"}

    def test_deletion_touches(self):
        new = BASE.replace("  store [%p1+4] = %v4\n", "")
        delta = diff_raw(new)
        assert delta.touched_blocks == {"then"}

    def test_branch_target_change_flags_edges(self):
        delta = diff_raw(BASE.replace("branch %v3, then, exit",
                                      "branch %v3, exit, then"))
        assert delta.changed_edges
        assert "entry" in delta.touched_blocks

    def test_added_block(self):
        new = BASE.replace("jump exit", "jump extra") + \
            "\nextra:\n  jump exit"
        # Block order: parser appends 'extra' after 'exit'.
        delta = diff_raw(new)
        assert delta.added_blocks == {"extra"}
        assert delta.changed_edges
        assert "then" in delta.touched_blocks  # its target changed

    def test_removed_block_is_structural(self):
        new = """entry:
  %v2 = 10
  %v3 = add %p0, 1
  branch %v3, exit, exit
exit:
  ret %v2"""
        delta = diff_raw(new)
        assert delta.removed_blocks == {"then"}
        assert delta.changed_edges

    def test_call_const_arg_not_transparent(self):
        base = """entry:
  %v2 = call helper(%p0, 1)
  ret %v2"""
        delta = diff_raw(base.replace("%p0, 1", "%p0, 2"), base)
        assert delta.touched_blocks == {"entry"}
        assert not delta.value_edits

    def test_load_width_change_not_transparent(self):
        delta = diff_raw(BASE.replace("load [%p0+8]", "load.b [%p0+8]"))
        assert delta.touched_blocks == {"then"}

    def test_param_mismatch_inconsistent(self):
        base = parse(BASE)
        new = parse(BASE, header="func f(%p0) -> value")
        assert not diff_functions(base, new).consistent

    def test_name_mismatch_inconsistent(self):
        base = parse(BASE)
        new = parse(BASE, header="func g(%p0, %p1) -> value")
        assert not diff_functions(base, new).consistent


class TestRenumberedPairing:
    BASE = """entry:
  %v2 = add %p0, %p1
  %v3 = add %v2, 1
  ret %v3"""
    SHIFTED = """entry:
  %v7 = add %p0, %p1
  %v9 = add %v7, 1
  ret %v9"""

    def test_registers_pair_positionally(self):
        base, new = parse(self.BASE), parse(self.SHIFTED)
        delta = diff_functions(base, new, pair_registers=True)
        assert delta.transparent
        v2 = base.blocks[0].instrs[0].dst
        v7 = new.blocks[0].instrs[0].dst
        assert delta.rename[v2] == v7
        assert not delta.new_vregs and not delta.deleted_vregs

    def test_constant_mismatch_is_touched_not_edit(self):
        delta = diff_functions(
            parse(self.BASE),
            parse(self.SHIFTED.replace("add %v7, 1", "add %v7, 2")),
            pair_registers=True)
        assert delta.touched_blocks == {"entry"}
        assert not delta.value_edits

    def test_non_function_rename_inconsistent(self):
        # %v2 would need to map to both %v7 and %v8.
        base = parse("entry:\n  %v3 = add %v2, %v2\n  ret %v3",
                     header="func f(%v2) -> value")
        new = parse("entry:\n  %v9 = add %v7, %v8\n  ret %v9",
                    header="func f(%v7) -> value")
        # Params pair v2->v7; the rhs then demands v2->v8: conflict.
        delta = diff_functions(base, new, pair_registers=True)
        assert not delta.consistent

    def test_non_injective_rename_inconsistent(self):
        base = parse("entry:\n  %v4 = add %v2, %v3\n  ret %v4",
                     header="func f(%v2, %v3) -> value")
        new = parse("entry:\n  %v9 = add %v7, %v7\n  ret %v9",
                    header="func f(%v7, %v7) -> value")
        delta = diff_functions(base, new, pair_registers=True)
        assert not delta.consistent

    def test_touched_block_regs_counted_deleted_and_new(self):
        base = parse(self.BASE)
        new = parse(self.SHIFTED.replace("%v9 = add %v7, 1",
                                         "%v9 = mul %v7, 1"))
        delta = diff_functions(base, new, pair_registers=True)
        assert delta.touched_blocks == {"entry"}
        # Nothing pairs inside a touched block, so every vreg on each
        # side (minus the paired params) is deleted/new respectively.
        assert {r.name for r in delta.deleted_vregs} == {"v2", "v3"}
        assert {r.name for r in delta.new_vregs} == {"v7", "v9"}


class TestHelpers:
    def test_touched_fraction(self):
        delta = FunctionDelta(touched_blocks=frozenset({"a"}),
                              added_blocks=frozenset({"b"}))
        assert delta.touched_fraction(4) == 0.5
        assert delta.touched_fraction(0) == 1.0

    def test_from_spill(self):
        v1, v2, v9 = VReg(1), VReg(2), VReg(9)
        spill = SimpleNamespace(touched_blocks={"loop"},
                                new_vregs={v9}, deleted_vregs={v2})
        renumbering = SimpleNamespace(
            webs=[SimpleNamespace(original=v1, reg=VReg(0))])
        delta = FunctionDelta.from_spill(spill, renumbering)
        assert delta.touched_blocks == frozenset({"loop"})
        assert delta.rename == {v1: VReg(0)}
        assert delta.new_vregs == frozenset({v9})
        assert delta.deleted_vregs == frozenset({v2})
        assert not delta.changed_edges and delta.consistent
