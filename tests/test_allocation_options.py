"""The unified AllocationOptions surface and its compatibility shims.

One frozen dataclass now carries every allocation knob across the
public API (``allocate_function``, ``allocate_module``, the scheduler,
the wire protocol).  These tests pin the contract: validation, the two
environment variables folded into :meth:`AllocationOptions.from_env`,
the wire form (protocol v2, with v1 requests still accepted), the
deprecation shims for every legacy keyword, and the rule that only
result-relevant fields enter the service cache fingerprint.
"""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, ServiceError
from repro.pipeline import allocate_module, prepare_function, prepare_module
from repro.regalloc import AllocationOptions, ChaitinAllocator
from repro.regalloc.base import allocate_function
from repro.service.cache import default_cache_dir, request_fingerprint
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    AllocationRequest,
    MachineSpec,
)
from repro.service.scheduler import Scheduler, execute_request
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile

IR = """func axpy(%p0, %p1) -> value {
entry:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %t = add %s, %p1
  ret %t
}
"""


def prepared_ir(machine):
    from repro.ir.parser import parse_module

    return prepare_module(parse_module(IR), machine)


class TestValidation:
    def test_defaults(self):
        opts = AllocationOptions()
        assert opts.max_rounds == 64
        assert opts.rematerialize is False
        assert opts.verify is True
        assert opts.jobs == 1
        assert opts.reuse_analyses is True
        assert opts.incremental == "on"
        assert opts.deadline_ms is None
        assert opts.cache_dir is None

    @pytest.mark.parametrize("bad", [
        dict(max_rounds=0),
        dict(jobs=0),
        dict(incremental="sometimes"),
        dict(deadline_ms=-1),
        dict(deadline_ms=True),
        dict(deadline_ms="soon"),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            AllocationOptions(**bad)

    def test_zero_deadline_is_legal(self):
        # deadline_s=0.0 is how clients ask for immediate degradation.
        assert AllocationOptions(deadline_ms=0).deadline_ms == 0

    def test_frozen_and_replace(self):
        opts = AllocationOptions()
        with pytest.raises(AttributeError):
            opts.jobs = 4
        bumped = opts.replace(jobs=4)
        assert bumped.jobs == 4 and opts.jobs == 1

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            AllocationOptions().replace(jobs=-2)


class TestCacheDirResolution:
    """Regression: the cache layer once read ``$REPRO_CACHE_DIR``
    directly, behind the options surface.  The variable now has exactly
    one reader — ``AllocationOptions.from_env`` — and
    ``default_cache_dir`` is pure with respect to the environment."""

    def test_env_is_never_consulted_directly(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        from pathlib import Path
        home_default = Path("~/.cache/repro").expanduser()
        assert default_cache_dir() == home_default
        assert default_cache_dir(AllocationOptions()) == home_default

    def test_env_flows_only_through_from_env(self, monkeypatch, tmp_path):
        env_dir = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
        opts = AllocationOptions.from_env()
        assert default_cache_dir(opts) == env_dir

    def test_explicit_options_win(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        chosen = tmp_path / "chosen"
        opts = AllocationOptions.from_env(cache_dir=str(chosen))
        assert default_cache_dir(opts) == chosen


class TestFromEnv:
    def test_reads_both_documented_variables(self):
        env = {"REPRO_INCREMENTAL_ROUNDS": "off",
               "REPRO_CACHE_DIR": "/tmp/repro-cache"}
        opts = AllocationOptions.from_env(env)
        assert opts.incremental == "off"
        assert opts.cache_dir == "/tmp/repro-cache"

    def test_validate_mode_and_empty_env(self):
        assert AllocationOptions.from_env(
            {"REPRO_INCREMENTAL_ROUNDS": "validate"}
        ).incremental == "validate"
        opts = AllocationOptions.from_env({})
        assert opts.incremental == "on" and opts.cache_dir is None

    def test_overrides_beat_the_environment(self):
        env = {"REPRO_INCREMENTAL_ROUNDS": "off",
               "REPRO_CACHE_DIR": "/tmp/ignored"}
        opts = AllocationOptions.from_env(env, incremental="validate",
                                          cache_dir="/tmp/won", jobs=3)
        assert opts.incremental == "validate"
        assert opts.cache_dir == "/tmp/won"
        assert opts.jobs == 3

    def test_rereads_environment_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", "off")
        assert AllocationOptions.from_env().incremental == "off"
        monkeypatch.setenv("REPRO_INCREMENTAL_ROUNDS", "1")
        assert AllocationOptions.from_env().incremental == "on"


class TestWireForm:
    def test_round_trip(self):
        opts = AllocationOptions(max_rounds=7, rematerialize=True,
                                 verify=False, jobs=4, deadline_ms=250.0)
        assert AllocationOptions.from_dict(opts.to_dict()) == opts

    def test_none_deadline_omitted(self):
        wire = AllocationOptions().to_dict()
        assert "deadline_ms" not in wire
        assert AllocationOptions.from_dict(wire) == AllocationOptions()

    def test_cache_dir_never_crosses_the_wire(self):
        wire = AllocationOptions(cache_dir="/secret/server/path").to_dict()
        assert "cache_dir" not in wire

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            AllocationOptions.from_dict({"jobs": 2, "turbo": True})
        with pytest.raises(ValueError, match="must be an object"):
            AllocationOptions.from_dict([1, 2])


class TestRemovedLegacyKeywords:
    """The PR-4 deprecation cycle is over: bare keywords are TypeErrors."""

    @pytest.fixture
    def setup(self):
        machine = make_machine(8)
        return prepared_ir(machine), machine

    def test_allocate_function_legacy_keywords(self, setup):
        prepared, machine = setup
        from repro.ir.clone import clone_function

        func = clone_function(prepared.functions[0])
        with pytest.raises(TypeError,
                           match=r"\['max_rounds', 'rematerialize'\]"):
            allocate_function(func, machine, ChaitinAllocator(),
                              max_rounds=8, rematerialize=True)

    def test_error_names_the_migration(self, setup):
        prepared, machine = setup
        with pytest.raises(TypeError,
                           match=r"options=AllocationOptions\(verify=\.\.\.\)"):
            allocate_module(prepared, machine, ChaitinAllocator(),
                            verify=False)

    def test_scheduler_jobs_keyword(self):
        with pytest.raises(TypeError, match="jobs"):
            Scheduler(jobs=2)

    def test_execute_request_jobs_keyword(self):
        request = AllocationRequest(id="d", ir=IR, allocator="chaitin",
                                    machine=MachineSpec(regs=8))
        with pytest.raises(TypeError, match="jobs"):
            execute_request(request, jobs=1)

    def test_modern_call_sites_warn_nothing(self, setup):
        prepared, machine = setup
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            allocate_module(prepared, machine, ChaitinAllocator(),
                            AllocationOptions(verify=False, max_rounds=8))


class TestErrorSurfacing:
    def test_pressure_cannot_be_met_through_options_path(self):
        # A generated function whose peak single-instruction no-spill
        # pressure exceeds k=2 is unallocatable by the spill-everywhere
        # family; the AllocationError must surface through the options
        # API exactly as it did through the legacy keywords.
        profile = BenchmarkProfile(name="press", stmts=14, int_pool=8,
                                   float_pool=2, call_prob=0.3,
                                   branch_prob=0.2, paired_prob=0.6,
                                   load_prob=0.4, store_prob=0.2,
                                   max_params=1, max_call_args=1)
        machine = make_machine(2)
        func = prepare_function(
            generate_function("press", profile, seed=0), machine)
        with pytest.raises(AllocationError,
                           match="register pressure cannot be met"):
            allocate_function(func, machine, ChaitinAllocator(),
                              AllocationOptions(max_rounds=16))


class TestProtocolCompat:
    def test_v2_request_carries_options_on_the_wire(self):
        request = AllocationRequest(
            id="w", ir=IR, machine=MachineSpec(regs=8),
            options=AllocationOptions(verify=False, max_rounds=9,
                                      deadline_ms=500.0))
        wire = request.to_wire()
        assert wire["protocol"] == PROTOCOL_VERSION == 2
        assert wire["options"]["max_rounds"] == 9
        # options is the only copy on a v2 line; the legacy duplicates
        # are gone (v1 conversations still carry them — see below)
        assert "verify" not in wire
        assert "deadline_s" not in wire
        again = AllocationRequest.from_wire(wire)
        assert again.options == request.options
        assert again.verify is False and again.deadline_s == 0.5

    def test_v1_request_round_trips_with_defaulted_options(self):
        # A v1 client sends no "options" object; the server accepts the
        # request and folds the bare knobs into a defaulted options.
        v1_wire = {
            "type": "allocate", "protocol": 1, "id": "old",
            "ir": IR, "allocator": "chaitin",
            "machine": {"regs": 8, "has_paired_loads": True},
            "verify": False, "deadline_s": 1.5,
        }
        request = AllocationRequest.from_wire(v1_wire)
        assert request.protocol == 1
        assert request.options is not None
        assert request.options.verify is False
        assert request.options.deadline_ms == 1500.0
        request.validate()  # v1 still spoken
        # and a v1 request serializes *without* the v2 options object,
        # carrying the bare knobs that dialect understands instead
        wire = request.to_wire()
        assert "options" not in wire
        assert wire["verify"] is False and wire["deadline_s"] == 1.5
        assert AllocationRequest.from_wire(wire) == request

    def test_unsupported_protocol_rejected(self):
        beyond = max(SUPPORTED_PROTOCOLS) + 1
        with pytest.raises(ServiceError, match="protocol"):
            AllocationRequest(id="x", ir=IR, protocol=beyond).validate()

    def test_bad_wire_options_become_service_errors(self):
        wire = AllocationRequest(id="b", ir=IR).to_wire()
        wire["options"] = {"jobs": 0}
        with pytest.raises(ServiceError, match="bad options"):
            AllocationRequest.from_wire(wire)
        wire["options"] = "fast please"
        with pytest.raises(ServiceError, match="bad options"):
            AllocationRequest.from_wire(wire)

    def test_explicit_options_win_over_legacy_fields(self):
        request = AllocationRequest(
            id="x", ir=IR, verify=True, deadline_s=9.0,
            options=AllocationOptions(verify=False, deadline_ms=100.0))
        assert request.verify is False
        assert request.deadline_s == 0.1

    def test_v1_executes_end_to_end(self):
        response = execute_request(AllocationRequest(
            id="v1", ir=IR, allocator="chaitin",
            machine=MachineSpec(regs=8), protocol=1))
        assert response.ok and response.result_digest


class TestFingerprint:
    def test_result_relevant_options_split_the_fingerprint(self):
        machine = make_machine(8)
        base = request_fingerprint(IR, machine, "full",
                                   options=AllocationOptions())
        assert base != request_fingerprint(
            IR, machine, "full", options=AllocationOptions(max_rounds=3))
        assert base != request_fingerprint(
            IR, machine, "full",
            options=AllocationOptions(rematerialize=True))
        assert base != request_fingerprint(
            IR, machine, "full", options=AllocationOptions(verify=False))

    def test_execution_policy_does_not_split_the_fingerprint(self):
        machine = make_machine(8)
        base = request_fingerprint(IR, machine, "full",
                                   options=AllocationOptions())
        for neutral in (AllocationOptions(jobs=8),
                        AllocationOptions(reuse_analyses=False),
                        AllocationOptions(incremental="off"),
                        AllocationOptions(deadline_ms=50.0),
                        AllocationOptions(cache_dir="/elsewhere")):
            assert base == request_fingerprint(IR, machine, "full",
                                               options=neutral)

    def test_default_options_match_the_legacy_verify_form(self):
        # Cache entries written before the options refactor must stay
        # reachable: the legacy verify= call spells the same key.
        machine = make_machine(8)
        assert request_fingerprint(IR, machine, "full", verify=True) == \
            request_fingerprint(IR, machine, "full",
                                options=AllocationOptions())
