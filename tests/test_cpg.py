"""Coloring Precedence Graph: the Figure 7(e) structure and the
colorability property the partial order certifies."""

import random

from repro.analysis.interference import build_interference
from repro.analysis.renumber import renumber
from repro.core.cpg import BOTTOM, TOP, build_cpg
from repro.ir.clone import clone_function
from repro.ir.values import RegClass
from repro.regalloc.igraph import build_alloc_graph
from repro.regalloc.simplify import simplify
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine, make_machine

from conftest import build_call_heavy, build_diamond, build_figure7


def cpg_for(func, machine, rclass=RegClass.INT):
    """Replicates the allocator's per-round CPG construction."""
    renumber(func)
    ig = build_interference(func)
    graph = build_alloc_graph(ig, machine, rclass)
    wig = graph.snapshot_active_adjacency()
    simplification = simplify(graph, optimistic=True)
    cpg = build_cpg(graph, wig, simplification)
    return cpg, graph, wig, simplification


class TestFigure7:
    """Replays the paper's example: removal order v0 v4 v1 v2 v3 at K=3
    gives edges v1->v0, v2->v0, v3->v4 with v1, v2, v3 under top."""

    def setup_method(self):
        func = build_figure7()
        machine = figure7_machine()
        lower_function(func, machine)
        self.cpg, self.graph, _, self.simpl = cpg_for(func, machine)
        self.by_name = {}
        for node in self.cpg.live_nodes():
            base = (node.name or "").split(".")[0]
            self.by_name[base] = node
        # paper name -> our builder name
        self.v = {
            "v0": self.by_name["v1"], "v1": self.by_name["v2"],
            "v2": self.by_name["v3"], "v3": self.by_name["v4"],
            "v4": self.by_name["v5"],
        }

    def test_edges_match_paper(self):
        v = self.v
        assert v["v0"] in self.cpg.succs[v["v1"]]
        assert v["v0"] in self.cpg.succs[v["v2"]]
        assert v["v4"] in self.cpg.succs[v["v3"]]

    def test_initial_queue_is_v1_v2_v3(self):
        initial = set(self.cpg.initial_queue())
        expected = {self.v["v1"], self.v["v2"], self.v["v3"]}
        # the condition vreg of our transcription also floats at top level
        assert expected <= initial

    def test_bottom_reachable_from_initially_ready(self):
        # The paper draws v0 -> bottom and v4 -> bottom.  Our
        # transcription has one extra node (the branch condition), so a
        # direct edge may legally be dropped as transitive; reachability
        # is the invariant.
        v = self.v
        assert self.cpg.reaches(v["v0"], BOTTOM)
        assert self.cpg.reaches(v["v4"], BOTTOM)

    def test_acyclic(self):
        assert self.cpg.topological_orders_exist()


class TestStructure:
    def test_every_live_range_present(self):
        func = build_diamond()
        machine = make_machine(8)
        lower_function(func, machine)
        cpg, graph, wig, _ = cpg_for(func, machine)
        assert set(cpg.live_nodes()) == set(wig)

    def test_every_node_has_a_predecessor(self):
        func = build_call_heavy()
        machine = make_machine(8)
        lower_function(func, machine)
        cpg, *_ = cpg_for(func, machine)
        for node in cpg.live_nodes():
            assert cpg.preds[node], f"{node} has no predecessor"

    def test_no_transitive_direct_edges_to_bottom(self):
        # Step 7: a direct edge to bottom must not coexist with another
        # successor that already reaches bottom.
        func = build_call_heavy()
        machine = make_machine(8)
        lower_function(func, machine)
        cpg, *_ = cpg_for(func, machine)
        for node in cpg.live_nodes():
            if BOTTOM not in cpg.succs[node]:
                continue
            for succ in cpg.succs[node]:
                if succ in (BOTTOM, TOP):
                    continue
                assert not cpg.reaches(succ, BOTTOM), (
                    f"{node} -> bottom is transitive via {succ}"
                )

    def test_reaches(self):
        func = build_diamond()
        machine = make_machine(8)
        lower_function(func, machine)
        cpg, *_ = cpg_for(func, machine)
        for node in cpg.live_nodes():
            assert cpg.reaches(TOP, node) or not cpg.preds[node]


class TestColorabilityProperty:
    """The paper's central claim: ANY topological order of the CPG
    colors every non-optimistic node greedily."""

    def check(self, func, machine, seed):
        cpg, graph, wig, simpl = cpg_for(func, machine)
        rng = random.Random(seed)
        # Build a random topological order.
        indeg = {n: len(p) for n, p in cpg.preds.items()}
        frontier = [n for n, d in indeg.items() if d == 0 and n != BOTTOM]
        order = []
        while frontier:
            node = rng.choice(frontier)
            frontier.remove(node)
            order.append(node)
            for succ in cpg.succs.get(node, ()):
                indeg[succ] -= 1
                if indeg[succ] == 0 and succ != BOTTOM:
                    frontier.append(succ)
        assignment = {}
        for node in order:
            if node == TOP or not hasattr(node, "rclass"):
                continue
            forbidden = set()
            for n in graph.adj.get(node, ()):
                if hasattr(n, "index"):
                    forbidden.add(n)
                elif n in assignment:
                    forbidden.add(assignment[n])
            free = [c for c in graph.colors if c not in forbidden]
            if node in simpl.optimistic:
                if free:
                    assignment[node] = free[0]
                continue
            assert free, (
                f"non-optimistic node {node} uncolorable in a valid "
                f"topological order (seed {seed})"
            )
            assignment[node] = free[0]

    def test_many_orders_figure7(self):
        for seed in range(25):
            func = build_figure7()
            machine = figure7_machine()
            lower_function(func, machine)
            self.check(func, machine, seed)

    def test_many_orders_call_heavy_small_k(self):
        for seed in range(25):
            func = build_call_heavy()
            machine = make_machine(4)
            lower_function(func, machine)
            self.check(func, machine, seed)
