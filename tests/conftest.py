"""Shared fixtures and IR-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.values import Const
from repro.target.presets import high_pressure, low_pressure, middle_pressure


@pytest.fixture
def machine16():
    return high_pressure()


@pytest.fixture
def machine24():
    return middle_pressure()


@pytest.fixture
def machine32():
    return low_pressure()


def build_straightline() -> Function:
    """p0 + p1 through a couple of temps; no control flow."""
    b = IRBuilder("straight", n_params=2)
    t1 = b.add(b.param(0), b.param(1))
    t2 = b.add(t1, Const(10))
    t3 = b.move(t2)
    b.ret(t3)
    return b.finish()


def build_diamond() -> Function:
    """if (p0 < p1) x = p0+1 else x = p1+2; return x."""
    b = IRBuilder("diamond", n_params=2)
    x = b.const(0)
    cond = b.binop("cmplt", b.param(0), b.param(1))
    b.branch(cond, "then", "else_")
    b.block("then")
    b.add(b.param(0), Const(1), dst=x)
    b.jump("merge")
    b.block("else_")
    b.add(b.param(1), Const(2), dst=x)
    b.jump("merge")
    b.block("merge")
    b.ret(x)
    return b.finish()


def build_counted_loop(trips: int = 3) -> Function:
    """sum += p0 for a constant trip count; returns the sum."""
    b = IRBuilder("loop", n_params=1)
    i = b.const(0)
    acc = b.const(0)
    b.jump("head")
    b.block("head")
    b.add(acc, b.param(0), dst=acc)
    b.binop("add", i, Const(1), dst=i)
    cond = b.binop("cmplt", i, Const(trips))
    b.branch(cond, "head", "exit")
    b.block("exit")
    b.ret(acc)
    return b.finish()


def build_call_heavy() -> Function:
    """Two calls with a value live across both."""
    b = IRBuilder("callheavy", n_params=2)
    keep = b.add(b.param(0), b.param(1))
    r1 = b.call("helper", [b.param(0)], returns=True)
    r2 = b.call("helper", [r1], returns=True)
    total = b.add(keep, r2)
    b.ret(total)
    return b.finish()


def build_paired_loads() -> Function:
    """Two fusible loads plus an unrelated one."""
    b = IRBuilder("paired", n_params=1)
    lo = b.load(b.param(0), 0)
    hi = b.load(b.param(0), 4)
    other = b.load(b.param(0), 64)
    s = b.add(lo, hi)
    s2 = b.add(s, other)
    b.ret(s2)
    return b.finish()


def build_figure7() -> Function:
    """The paper's Figure 7(a) program (shared library transcription)."""
    from repro.workloads.figures import figure7_function

    return figure7_function()
