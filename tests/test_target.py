"""Target machines and calling-convention lowering."""

import pytest

from repro.errors import TargetError
from repro.ir.instructions import Call, ConstInst, Move, Ret
from repro.ir.validate import validate_function
from repro.ir.values import Const, PReg, RegClass
from repro.target.lowering import lower_function
from repro.target.machine import RegisterFile, TargetMachine
from repro.target.presets import (
    figure7_machine,
    high_pressure,
    low_pressure,
    make_machine,
    middle_pressure,
)

from conftest import build_call_heavy, build_straightline


class TestPresets:
    @pytest.mark.parametrize("factory,k", [
        (high_pressure, 16), (middle_pressure, 24), (low_pressure, 32),
    ])
    def test_sizes(self, factory, k):
        machine = factory()
        assert machine.k(RegClass.INT) == k
        assert machine.k(RegClass.FLOAT) == k

    def test_half_volatile(self):
        machine = middle_pressure()
        regfile = machine.file(RegClass.INT)
        assert len(regfile.volatile) == 12
        assert len(regfile.nonvolatile) == 12

    def test_eight_param_regs(self):
        machine = low_pressure()
        assert len(machine.file(RegClass.INT).param_regs) == 8

    def test_return_is_first_param_reg(self):
        machine = high_pressure()
        regfile = machine.file(RegClass.INT)
        assert regfile.return_reg == regfile.param_regs[0]

    def test_byte_regs_int_only(self):
        machine = high_pressure()
        assert machine.file(RegClass.INT).byte_load_regs
        assert not machine.file(RegClass.FLOAT).byte_load_regs

    def test_figure7_conventions(self):
        machine = figure7_machine()
        regfile = machine.file(RegClass.INT)
        assert regfile.k == 3
        assert [r.index for r in regfile.regs] == [1, 2, 3]
        assert regfile.return_reg.index == 1
        assert {r.index for r in regfile.volatile} == {1, 2}

    def test_adjacency_helpers(self):
        regfile = high_pressure().file(RegClass.INT)
        r5 = [r for r in regfile.regs if r.index == 5][0]
        assert regfile.next_reg(r5).index == 6
        assert regfile.prev_reg(r5).index == 4
        last = [r for r in regfile.regs if r.index == 15][0]
        assert regfile.next_reg(last) is None

    def test_odd_size_rejected(self):
        with pytest.raises(TargetError):
            make_machine(7)

    def test_bad_file_definitions_rejected(self):
        regs = tuple(PReg(i) for i in range(4))
        with pytest.raises(TargetError):
            RegisterFile(
                rclass=RegClass.INT, regs=regs,
                volatile=frozenset({PReg(9)}),  # not in the file
                param_regs=(regs[0],), return_reg=regs[0],
            )
        with pytest.raises(TargetError):
            RegisterFile(
                rclass=RegClass.INT, regs=regs,
                volatile=frozenset(regs[:2]),
                param_regs=(regs[3],),  # non-volatile param register
                return_reg=regs[0],
            )

    def test_describe_mentions_conventions(self):
        text = middle_pressure().describe()
        assert "volatile" in text and "params" in text


class TestLowering:
    def test_params_arrive_in_arg_registers(self):
        machine = middle_pressure()
        func = build_straightline()
        lower_function(func, machine)
        first = func.entry.instrs[0]
        assert isinstance(first, Move)
        assert first.src == machine.param_reg(0, RegClass.INT)

    def test_call_lowered_to_convention(self):
        machine = middle_pressure()
        func = build_call_heavy()
        lower_function(func, machine)
        calls = [i for _, i in func.instructions() if isinstance(i, Call)]
        assert all(c.lowered for c in calls)
        assert calls[0].reg_uses == [machine.param_reg(0, RegClass.INT)]
        assert calls[0].reg_defs == [machine.file(RegClass.INT).return_reg]
        validate_function(func)

    def test_result_copied_from_return_register(self):
        machine = middle_pressure()
        func = build_call_heavy()
        lower_function(func, machine)
        retreg = machine.file(RegClass.INT).return_reg
        blk = func.entry
        indices = [idx for idx, i in enumerate(blk.instrs)
                   if isinstance(i, Call)]
        follow = blk.instrs[indices[0] + 1]
        assert isinstance(follow, Move) and follow.src == retreg

    def test_ret_value_through_return_register(self):
        machine = middle_pressure()
        func = build_straightline()
        lower_function(func, machine)
        last = func.blocks[-1].instrs[-1]
        assert isinstance(last, Ret)
        assert last.src is None
        assert last.reg_uses == [machine.file(RegClass.INT).return_reg]

    def test_const_args_materialized(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("f", n_params=0)
        r = b.call("helper", [Const(7)], returns=True)
        b.ret(r)
        func = b.finish()
        machine = middle_pressure()
        lower_function(func, machine)
        first = func.entry.instrs[0]
        assert isinstance(first, ConstInst) and first.value == 7

    def test_unused_param_gets_no_move(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("f", n_params=2)
        b.ret(b.param(0))  # param 1 unused
        func = b.finish()
        lower_function(func, middle_pressure())
        moves = [i for i in func.entry.instrs if isinstance(i, Move)]
        assert len([m for m in moves if isinstance(m.src, PReg)]) == 1

    def test_too_many_args_rejected(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("f", n_params=0)
        args = [Const(i) for i in range(9)]
        b.call("helper", args)
        b.ret()
        func = b.finish()
        with pytest.raises(TargetError):
            lower_function(func, middle_pressure())

    def test_lowering_rejects_phis(self):
        from repro.ssa.construct import to_ssa

        from conftest import build_diamond

        func = build_diamond()
        to_ssa(func)
        with pytest.raises(TargetError):
            lower_function(func, middle_pressure())

    def test_mixed_class_call_args(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("f", n_params=2,
                      param_classes=[RegClass.INT, RegClass.FLOAT])
        r = b.call("fhelper", [b.param(1), b.param(0)], returns=True,
                   rclass=RegClass.FLOAT)
        s = b.unary("ftoi", r, rclass=RegClass.INT)
        b.ret(s)
        func = b.finish()
        machine = middle_pressure()
        lower_function(func, machine)
        (call,) = [i for _, i in func.instructions()
                   if isinstance(i, Call)]
        # First float arg in the float file's first param reg, first int
        # arg in the int file's first param reg.
        classes = [r.rclass for r in call.reg_uses]
        assert RegClass.FLOAT in classes and RegClass.INT in classes
