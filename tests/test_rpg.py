"""Register Preference Graph construction: one case per preference type."""

from repro.core.costs import CostModel
from repro.core.prefs import PreferenceConfig, build_rpg, volatility_groups
from repro.core.rpg import PrefKind, RegGroup
from repro.ir.builder import IRBuilder
from repro.ir.values import PReg, RegClass, VReg
from repro.target.lowering import lower_function
from repro.target.presets import high_pressure, middle_pressure

from conftest import build_call_heavy, build_figure7, build_paired_loads


def rpg_for(func, machine, config=None):
    lower_function(func, machine)
    costs = CostModel(func, machine)
    return build_rpg(func, machine, costs, config), costs


def edges_of_kind(rpg, kind):
    return [e for v in rpg.nodes() for e in rpg.edges_from(v)
            if e.kind is kind]


class TestDedicated:
    def test_param_copy_prefers_arg_register(self):
        func = build_call_heavy()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine, PreferenceConfig.only_coalescing())
        coalesce = edges_of_kind(rpg, PrefKind.COALESCE)
        to_phys = [e for e in coalesce if isinstance(e.target, PReg)]
        assert any(e.target == machine.param_reg(0, RegClass.INT)
                   for e in to_phys)

    def test_dedicated_can_be_disabled(self):
        func = build_call_heavy()
        machine = middle_pressure()
        config = PreferenceConfig(coalesce=True, dedicated=False,
                                  paired_loads=False, volatility=False,
                                  byte_loads=False)
        rpg, _ = rpg_for(func, machine, config)
        coalesce = edges_of_kind(rpg, PrefKind.COALESCE)
        assert all(isinstance(e.target, VReg) for e in coalesce)


class TestCoalesce:
    def test_both_directions_for_copies(self):
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))     # p0 dies here
        b.ret(t)
        func = b.finish()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine, PreferenceConfig.only_coalescing())
        kinds = [(e.src, e.target) for e in
                 edges_of_kind(rpg, PrefKind.COALESCE)
                 if isinstance(e.target, VReg)]
        # dst->src and src->dst both present for the vreg-vreg copy
        pairs = {frozenset((a, b_)) for a, b_ in kinds}
        assert any(len(p) == 2 for p in pairs)


class TestPairedLoads:
    def test_sequential_edges_both_ways(self):
        func = build_paired_loads()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine)
        seq_prev = edges_of_kind(rpg, PrefKind.SEQ_PREV)
        seq_next = edges_of_kind(rpg, PrefKind.SEQ_NEXT)
        assert len(seq_prev) == 1 and len(seq_next) == 1
        assert seq_prev[0].src == seq_next[0].target
        assert seq_next[0].src == seq_prev[0].target

    def test_disabled_on_machines_without_pairs(self):
        from repro.target.presets import make_machine

        func = build_paired_loads()
        machine = make_machine(24, has_paired_loads=False)
        rpg, _ = rpg_for(func, machine)
        assert not edges_of_kind(rpg, PrefKind.SEQ_PREV)
        assert not edges_of_kind(rpg, PrefKind.SEQ_NEXT)


class TestVolatility:
    def test_every_vreg_gets_both_groups(self):
        func = build_call_heavy()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine)
        for v in func.vregs():
            groups = [e.target.name for e in rpg.edges_from(v)
                      if e.kind is PrefKind.GROUP]
            assert "volatile" in groups and "non-volatile" in groups

    def test_crossing_web_prefers_nonvolatile(self):
        func = build_call_heavy()
        machine = middle_pressure()
        rpg, costs = rpg_for(func, machine)
        crossing = [v for v in func.vregs() if costs.crosses_calls(v)
                    and costs.spill_cost(v) > 2]
        assert crossing
        for v in crossing:
            strengths = {
                e.target.name: e.strength.best
                for e in rpg.edges_from(v) if e.kind is PrefKind.GROUP
            }
            assert strengths["non-volatile"] > strengths["volatile"]

    def test_groups_helper(self):
        machine = middle_pressure()
        vol, nonvol = volatility_groups(machine, RegClass.INT)
        assert len(vol.regs) == 12 and len(nonvol.regs) == 12
        assert not (vol.regs & nonvol.regs)


class TestByteLoads:
    def test_byte_load_gets_group_edge(self):
        b = IRBuilder("f", n_params=1)
        v = b.load(b.param(0), 0, width="byte")
        b.ret(v)
        func = b.finish()
        machine = high_pressure()
        rpg, _ = rpg_for(func, machine)
        byte_edges = [
            e for e in rpg.edges_from(v)
            if e.kind is PrefKind.GROUP
            and isinstance(e.target, RegGroup)
            and e.target.name == "byte-capable"
        ]
        assert len(byte_edges) == 1
        regfile = machine.file(RegClass.INT)
        assert byte_edges[0].target.regs == regfile.byte_load_regs


class TestFigure7Shape:
    def test_v3_has_coalesce_to_v0_at_40_38(self):
        func = build_figure7()
        machine = __import__(
            "repro.target.presets", fromlist=["figure7_machine"]
        ).figure7_machine()
        rpg, costs = rpg_for(func, machine)
        by_name = {str(v): v for v in func.vregs()}
        v3, v0 = by_name["%v4"], by_name["%v1"]
        edges = [e for e in rpg.edges_from(v3)
                 if e.kind is PrefKind.COALESCE and e.target == v0]
        assert len(edges) == 1
        assert edges[0].strength.vol == 40
        assert edges[0].strength.nonvol == 38


class TestGraphAPI:
    def test_edge_count_and_nodes(self):
        func = build_call_heavy()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine)
        assert rpg.edge_count() > 0
        assert rpg.nodes()

    def test_edges_to_indexes_live_range_targets(self):
        b = IRBuilder("f", n_params=1)
        t = b.move(b.param(0))
        b.ret(t)
        func = b.finish()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine, PreferenceConfig.only_coalescing())
        incoming = rpg.edges_to(t)
        assert any(e.src != t for e in incoming)

    def test_str_renders_edges(self):
        func = build_call_heavy()
        machine = middle_pressure()
        rpg, _ = rpg_for(func, machine)
        text = str(rpg)
        assert "prefers" in text
