"""The cluster tier: cache peer, shard health, router, supervision.

Most tests run the shards *in process* (a Scheduler + ServerThread per
shard, all plugged into one shared CachePeerServer) so they are fast
and deterministic; the resilience drill at the bottom spawns real
``repro serve`` subprocesses and SIGKILLs one mid-load.
"""

import json
import socket
import threading
import time

import pytest

from repro.cluster.cachepeer import (
    CachePeerServer,
    PeerCacheBackend,
    parse_hostport,
)
from repro.cluster.health import ShardHandle, ShardHealth
from repro.cluster.router import (
    ClusterMetrics,
    ClusterRouter,
    ClusterServerThread,
)
from repro.cluster.shards import ClusterSupervisor
from repro.service.cache import DiskCacheBackend, ResultCache
from repro.service.client import ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AllocationRequest,
    AllocationResponse,
    MachineSpec,
)
from repro.service.scheduler import Scheduler
from repro.service.server import ServerThread


def make_request(rid="c1", bench="compress", allocator="chaitin",
                 regs=12, **overrides) -> AllocationRequest:
    base = dict(id=rid, bench=bench, allocator=allocator,
                machine=MachineSpec(regs=regs))
    base.update(overrides)
    return AllocationRequest(**base)


def sealed_entry(degraded=False) -> AllocationResponse:
    return AllocationResponse(
        ok=True, allocator="full", effective_allocator="full",
        degraded=degraded, code="func f() {}", stats={"moves_before": 1},
        cycles={"total": 2.0}).seal()


class TestParseHostport:
    def test_host_and_port(self):
        assert parse_hostport("10.0.0.7:9000") == ("10.0.0.7", 9000)

    def test_bare_port_gets_default_host(self):
        assert parse_hostport("9000") == ("127.0.0.1", 9000)

    def test_garbage_raises(self):
        with pytest.raises(ValueError, match="bad host:port"):
            parse_hostport("nope")


class TestShardHealth:
    def make(self, n=3, **kw) -> ShardHealth:
        handles = [ShardHandle(i, "127.0.0.1", 7000 + i) for i in range(n)]
        kw.setdefault("saturation", 2)
        return ShardHealth(handles, **kw)

    def test_home_shard_is_digest_stable(self):
        health = self.make()
        digest = "ab" * 32
        assert health.home_shard(digest) == health.home_shard(digest)
        assert 0 <= health.home_shard(digest) < 3

    def test_route_order_is_the_ring_from_home(self):
        health = self.make()
        digest = "00" * 32  # home 0
        assert [s.index for s in health.route_order(digest)] == [0, 1, 2]

    def test_down_shard_leaves_the_ring_until_probe_due(self):
        health = self.make(probe_backoff_s=30.0)
        health.record_failure(1, "boom")
        health.record_failure(1, "boom")  # max_failures=2 -> down
        assert not health.available(1)
        order = [s.index for s in health.route_order("00" * 32)]
        assert order == [0, 2]
        snap = health.snapshot()[1]
        assert not snap["up"] and snap["downs"] == 1
        assert snap["last_error"] == "boom"

    def test_probe_backoff_elapses_then_success_recovers(self):
        health = self.make(probe_backoff_s=0.01)
        health.record_failure(0)
        health.record_failure(0)
        time.sleep(0.05)
        assert health.available(0)  # half-open probe due
        health.begin(0)
        # while one probe is in flight, no second probe is allowed
        assert not health.available(0)
        health.record_success(0)
        health.end(0)
        assert health.available(0) and health.snapshot()[0]["up"]

    def test_backoff_doubles_while_down(self):
        health = self.make(probe_backoff_s=1.0, max_backoff_s=600.0)
        for _ in range(4):
            health.record_failure(2)
        state = health._states[2]
        assert state.backoff_s == 4.0  # 1.0 * 2**(4-2)

    def test_saturation_overload_and_rejection(self):
        health = self.make(saturation=2)  # hard limit 4
        assert not health.overloaded() and not health.rejecting()
        for index in range(3):
            for _ in range(2):
                health.begin(index)
        assert health.overloaded() and not health.rejecting()
        for index in range(3):
            for _ in range(2):
                health.begin(index)
        assert health.rejecting()
        for index in range(3):
            for _ in range(4):
                health.end(index)
        assert not health.overloaded()

    def test_mark_down_and_up_round_trip(self):
        health = self.make(probe_backoff_s=30.0)
        health.mark_down(1, "process died")
        assert not health.available(1)
        health.mark_up(1)
        assert health.available(1) and health.snapshot()[1]["up"]

    def test_no_shards_rejects(self):
        with pytest.raises(ValueError):
            ShardHealth([])


class TestCachePeer:
    @pytest.fixture()
    def peer(self):
        server = CachePeerServer(store=ResultCache(max_entries=16))
        server.start()
        yield server
        server.stop()

    def test_put_get_round_trip_over_tcp(self, peer):
        backend = PeerCacheBackend(peer.host, peer.port)
        entry = sealed_entry()
        backend.put("k1", entry)
        got = backend.get("k1")
        assert got is not None
        assert got.result_digest == entry.result_digest
        assert backend.hits == 1
        assert peer.counters["puts"] == 1
        assert peer.counters["get_hits"] == 1

    def test_miss_is_a_clean_none(self, peer):
        backend = PeerCacheBackend(peer.host, peer.port)
        assert backend.get("absent") is None
        assert backend.errors == 0

    def test_degraded_entries_are_refused(self, peer):
        backend = PeerCacheBackend(peer.host, peer.port)
        backend.put("bad", sealed_entry(degraded=True))
        assert backend.get("bad") is None
        assert len(peer.store) == 0

    def test_malformed_ops_are_counted_not_fatal(self, peer):
        with socket.create_connection((peer.host, peer.port)) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile().readline())
        assert reply["ok"] is False
        assert peer.counters["bad_ops"] == 1
        # the server still works afterwards
        backend = PeerCacheBackend(peer.host, peer.port)
        backend.put("k", sealed_entry())
        assert backend.get("k") is not None

    def test_breaker_trips_after_consecutive_failures(self):
        # grab a port with nothing listening on it
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        backend = PeerCacheBackend("127.0.0.1", port, timeout=0.2,
                                   max_failures=2, cooldown_s=60.0)
        assert backend.get("k") is None
        assert backend.get("k") is None
        assert backend.trips == 1
        # open breaker: instant miss, no further errors recorded
        errors = backend.errors
        assert backend.get("k") is None
        assert backend.errors == errors
        assert backend.snapshot()["tripped"]

    def test_result_cache_uses_peer_as_l2(self, peer):
        writer = ResultCache(max_entries=4,
                             backend=PeerCacheBackend(peer.host, peer.port))
        reader = ResultCache(max_entries=4,
                             backend=PeerCacheBackend(peer.host, peer.port))
        entry = sealed_entry()
        writer.put("shared", entry)
        got = reader.get("shared")  # memory miss -> peer hit
        assert got is not None and got.result_digest == entry.result_digest
        assert reader.disk_hits == 1  # the generalized backend-hit counter
        snap = reader.snapshot()
        assert snap["backend"]["backend"] == "peer"
        assert snap["disk_dir"] is None

    def test_disk_backend_behind_peer_store(self, tmp_path):
        server = CachePeerServer(store=ResultCache(
            max_entries=4, backend=DiskCacheBackend(tmp_path)))
        server.start()
        try:
            backend = PeerCacheBackend(server.host, server.port)
            backend.put("k2", sealed_entry())
            files = list(tmp_path.rglob("*.json"))
            assert len(files) == 1
        finally:
            server.stop()


@pytest.fixture(scope="module")
def cluster():
    """Two in-process shards sharing one cache peer, plus their router."""
    peer = CachePeerServer(store=ResultCache(max_entries=256))
    peer.start()
    shards = []
    handles = []
    for index in range(2):
        cache = ResultCache(max_entries=64,
                            backend=PeerCacheBackend(peer.host, peer.port))
        scheduler = Scheduler(cache=cache)
        server = ServerThread(scheduler)
        host, port = server.start()
        shards.append((scheduler, server, cache))
        handles.append(ShardHandle(index, host, port))
    router = ClusterRouter(handles, hedge_s=5.0)
    thread = ClusterServerThread(router, "127.0.0.1", 0)
    host, port = thread.start()
    yield {
        "peer": peer,
        "handles": handles,
        "router": router,
        "client": ServiceClient(host, port),
    }
    thread.stop()
    for _scheduler, server, _cache in shards:
        server.stop()
    peer.stop()


class TestClusterRouting:
    def test_any_shard_gives_byte_identical_results(self, cluster):
        request = make_request("det", bench="db", regs=14)
        replies = []
        for handle in cluster["handles"]:
            direct = ServiceClient(handle.host, handle.port)
            reply = direct.allocate(make_request("det", bench="db", regs=14))
            assert reply.ok and not reply.degraded
            replies.append(reply)
        assert replies[0].result_digest == replies[1].result_digest
        assert replies[0].result_payload() == replies[1].result_payload()
        via_router = cluster["client"].allocate(request)
        assert via_router.ok
        assert via_router.result_digest == replies[0].result_digest

    def test_repeat_through_router_is_a_cache_hit(self, cluster):
        first = cluster["client"].allocate(make_request("r1", regs=10))
        second = cluster["client"].allocate(make_request("r2", regs=10))
        assert first.ok and second.ok
        assert second.cached
        assert first.result_digest == second.result_digest
        # The router forwarded its memoized digest as a fingerprint
        # hint, so the shard served the hit without re-normalizing the
        # module — no parse pass appears in the shard-side timings.
        assert "parse_s" not in second.timings

    def test_shards_share_results_through_the_peer(self, cluster):
        request = make_request("share-a", bench="jess", regs=8)
        a, b = cluster["handles"]
        hits_before = cluster["peer"].counters["get_hits"]
        first = ServiceClient(a.host, a.port).allocate(request)
        second = ServiceClient(b.host, b.port).allocate(
            make_request("share-b", bench="jess", regs=8))
        assert first.ok and second.ok
        assert second.cached  # b never computed it: served from the peer
        assert first.result_digest == second.result_digest
        assert cluster["peer"].counters["get_hits"] > hits_before

    def test_forced_hedging_still_non_degraded_and_identical(self, cluster):
        baseline = cluster["client"].allocate(
            make_request("h0", bench="javac", regs=10))
        handles = cluster["handles"]
        router = ClusterRouter(handles, hedge_s=0.0)  # hedge immediately
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        host, port = thread.start()
        try:
            client = ServiceClient(host, port)
            for i in range(4):
                reply = client.allocate(
                    make_request(f"h{i + 1}", bench="javac", regs=10))
                assert reply.ok and not reply.degraded
                assert reply.result_digest == baseline.result_digest
            counters = router.metrics.snapshot()["counters"]
            assert counters["hedges_started"] >= 1
            wins = (counters["hedge_wins_primary"]
                    + counters["hedge_wins_fallback"])
            assert wins == counters["hedges_started"]
        finally:
            thread.stop()

    def test_stats_document_shape(self, cluster):
        stats = cluster["client"].stats()
        assert stats["type"] == "cluster_stats"
        assert stats["protocol"] == PROTOCOL_VERSION
        assert "requests_total" in stats["router"]["counters"]
        assert len(stats["shards"]) == 2
        # each probed shard answered with its own stats document
        for doc in stats["shard_stats"].values():
            assert doc["type"] == "stats"

    def test_ping_and_unknown_type(self, cluster):
        client = cluster["client"]
        assert client.request({"type": "ping"})["type"] == "pong"
        reply = client.request({"type": "frobnicate"})
        assert "unknown message type" in reply["error"]

    def test_bad_request_is_an_error_response(self, cluster):
        reply = cluster["client"].request(
            {"type": "allocate", "id": "bad", "bench": "quake"})
        assert reply["ok"] is False
        assert "quake" in reply["error"]

    def test_overload_degrades_at_the_router(self, cluster):
        handles = cluster["handles"]
        router = ClusterRouter(handles, hedge_s=None, saturation=1)
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        host, port = thread.start()
        try:
            for index in range(len(handles)):
                router.health.begin(index)  # soft watermark everywhere
            reply = ServiceClient(host, port).allocate(
                make_request("ov", allocator="full", regs=10))
            assert reply.ok
            assert reply.degraded
            assert reply.allocator == "full"
            assert reply.effective_allocator != "full"
            assert router.metrics.counters["degraded_total"] == 1
        finally:
            thread.stop()

    def test_full_saturation_rejects(self, cluster):
        handles = cluster["handles"]
        router = ClusterRouter(handles, hedge_s=None, saturation=1)
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        host, port = thread.start()
        try:
            for index in range(len(handles)):
                for _ in range(router.health.hard_limit):
                    router.health.begin(index)
            reply = ServiceClient(host, port).request(
                make_request("rej").to_wire())
            assert reply["ok"] is False
            assert "admission control" in reply["error"]
            assert router.metrics.counters["rejected_total"] == 1
        finally:
            thread.stop()

    def test_dead_shard_is_rerouted_around(self, cluster):
        # one live shard + one dead address
        live = cluster["handles"][0]
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        handles = [ShardHandle(0, "127.0.0.1", dead_port),
                   ShardHandle(1, live.host, live.port)]
        router = ClusterRouter(handles, hedge_s=None)
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        host, port = thread.start()
        try:
            client = ServiceClient(host, port)
            for i in range(4):  # some digests will home on the dead shard
                reply = client.allocate(
                    make_request(f"rr{i}", regs=8 + 2 * i))
                assert reply.ok
            counters = router.metrics.snapshot()["counters"]
            assert counters["responses_ok"] == 4
        finally:
            thread.stop()

    def test_worker_crash_inside_shard_is_invisible(self, cluster):
        from repro.exec.faults import FaultPlan

        from repro.regalloc import AllocationOptions

        cache = ResultCache(max_entries=8)
        scheduler = Scheduler(cache=cache,
                              options=AllocationOptions(jobs=2),
                              fault_plan=FaultPlan.crash_on(0))
        shard = ServerThread(scheduler)
        host, port = shard.start()
        router = ClusterRouter([ShardHandle(0, host, port)], hedge_s=None)
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        rhost, rport = thread.start()
        try:
            reply = ServiceClient(rhost, rport).allocate(
                make_request("crash", bench="db", allocator="full", regs=8))
            assert reply.ok  # the pool's retry absorbed the crash
        finally:
            thread.stop()
            shard.stop()


class TestClusterMetrics:
    def test_hedge_win_rate(self):
        metrics = ClusterMetrics()
        assert metrics.hedge_win_rate == 0.0
        metrics.inc("hedges_started", 4)
        metrics.inc("hedge_wins_fallback", 1)
        assert metrics.hedge_win_rate == 0.25
        assert metrics.snapshot()["hedge_win_rate"] == 0.25


@pytest.mark.slow
class TestClusterResilience:
    """Real subprocess shards; one gets SIGKILLed under load."""

    def test_shard_kill_under_load_loses_no_requests(self, tmp_path):
        supervisor = ClusterSupervisor(shards=3, jobs=1, cache_size=32,
                                       disk_dir=None)
        handles = supervisor.start()
        router = ClusterRouter(handles, supervisor=supervisor, hedge_s=1.0,
                               supervise_interval_s=0.2)
        thread = ClusterServerThread(router, "127.0.0.1", 0)
        host, port = thread.start()
        failures: list = []
        responses: list = []
        lock = threading.Lock()

        def submit(rid: str, regs: int) -> None:
            try:
                reply = ServiceClient(host, port, timeout=120.0).allocate(
                    make_request(rid, regs=regs))
            except Exception as err:  # noqa: BLE001 - recording, not hiding
                with lock:
                    failures.append((rid, repr(err)))
                return
            with lock:
                responses.append(reply)
                if not reply.ok:
                    failures.append((rid, reply.error))

        try:
            # find request "warm"'s home shard, then warm the caches
            warm = make_request("warm", regs=10)
            digest = router._digest_for(warm)
            home = router.health.home_shard(digest)
            first = ServiceClient(host, port).allocate(warm)
            assert first.ok and not first.cached

            threads = [
                threading.Thread(target=submit,
                                 args=(f"load{i}", 8 + 2 * (i % 4)))
                for i in range(10)
            ]
            for worker in threads:
                worker.start()
            time.sleep(0.15)  # let the load get in flight
            victim_pid = supervisor.processes[home].pid
            supervisor.kill_shard(home)
            for worker in threads:
                worker.join(timeout=150)
            assert failures == []
            assert len(responses) == 10
            assert all(reply.ok for reply in responses)

            # the killed home shard's entry survives in the peer tier:
            # the rerouted (or respawned, cold-L1) shard serves it as a hit
            again = ServiceClient(host, port).allocate(
                make_request("warm2", regs=10))
            assert again.ok
            assert again.cached
            assert again.result_digest == first.result_digest
            assert supervisor.peer.counters["get_hits"] >= 1

            # supervision refills the seat with a fresh process
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                shard = supervisor.processes[home]
                if (shard is not None and shard.alive()
                        and shard.pid != victim_pid):
                    break
                time.sleep(0.2)
            shard = supervisor.processes[home]
            assert shard is not None and shard.alive()
            assert shard.pid != victim_pid
            assert supervisor.respawns >= 1
        finally:
            thread.stop()
            supervisor.stop()
