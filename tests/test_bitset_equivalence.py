"""Bitset dataflow kernels vs. their retained set-based references.

The liveness and interference builders were rewritten over dense integer
bitmasks (:mod:`repro.analysis.indexing`); the original set formulations
are kept as ``*_reference`` oracles.  These properties pin the two
implementations together set-for-set on randomly generated CFGs, check
the :class:`~repro.regalloc.igraph.AllocGraph` incremental-degree
bookkeeping against a recount, and assert the pipeline's throughput
levers (round-0 analysis caching, ``jobs=N`` fan-out) change nothing
about the produced allocations.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.interference import (
    build_interference,
    build_interference_reference,
)
from repro.analysis.liveness import (
    compute_liveness,
    compute_liveness_reference,
    instruction_liveness,
)
from repro.cfg.analysis import build_cfg
from repro.core import PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.ir.values import PReg, VReg
from repro.pipeline import allocate_module, prepare_function, prepare_module
from repro.regalloc import AllocationOptions
from repro.regalloc.igraph import build_alloc_graph
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function, generate_module
from repro.workloads.profiles import BenchmarkProfile

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("bitset"),
    stmts=st.integers(4, 14),
    int_pool=st.integers(3, 8),
    float_pool=st.integers(0, 3),
    call_prob=st.floats(0.0, 0.3),
    branch_prob=st.floats(0.0, 0.3),
    loop_prob=st.floats(0.0, 0.25),
    max_loop_depth=st.integers(1, 2),
    copy_prob=st.floats(0.0, 0.3),
    paired_prob=st.floats(0.0, 0.5),
    byte_prob=st.floats(0.0, 0.4),
    load_prob=st.floats(0.0, 0.3),
    store_prob=st.floats(0.0, 0.15),
    max_params=st.integers(1, 2),
    max_call_args=st.integers(1, 2),
)


def _prepared(profile, seed, k=8):
    machine = make_machine(k)
    func = prepare_function(generate_function("bitset", profile, seed),
                            machine)
    return func, machine


class TestLivenessEquivalence:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_block_liveness_matches_reference(self, profile, seed):
        func, _ = _prepared(profile, seed)
        cfg = build_cfg(func)
        fast = compute_liveness(func, cfg)
        ref = compute_liveness_reference(func, cfg)
        for label in func.block_map():
            assert fast.live_in[label] == ref.live_in[label]
            assert fast.live_out[label] == ref.live_out[label]
            assert fast.use[label] == ref.use[label]
            assert fast.defs[label] == ref.defs[label]
        # The mask twins decode to exactly the same sets.
        for label in func.block_map():
            assert fast.index.set_of(fast.live_in_mask[label]) \
                == fast.live_in[label]
            assert fast.index.set_of(fast.live_out_mask[label]) \
                == fast.live_out[label]

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_instruction_liveness_matches_reference(self, profile, seed):
        func, _ = _prepared(profile, seed)
        fast = instruction_liveness(func, compute_liveness(func))
        # A reference Liveness has no index, so instruction_liveness
        # takes its direct set-scanning path.
        slow = instruction_liveness(func, compute_liveness_reference(func))
        assert fast.keys() == slow.keys()
        for key in fast:
            assert fast[key] == slow[key]


class TestInterferenceEquivalence:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_adjacency_and_moves_match_reference(self, profile, seed):
        func, _ = _prepared(profile, seed)
        fast = build_interference(func)
        ref = build_interference_reference(func)
        assert set(fast.adjacency) == set(ref.adjacency)
        for node in ref.adjacency:
            assert fast.adjacency[node] == ref.adjacency[node], node
        assert [(m.dst, m.src) for m in fast.moves] \
            == [(m.dst, m.src) for m in ref.moves]


class TestIncrementalDegrees:
    def _check_degrees(self, graph):
        for node in graph.active:
            assert graph._degree[node] == len(graph.neighbors(node)), node

    def test_degree_tracks_recount_under_mutation(self):
        """merge/remove/add_edge keep ``_degree`` equal to a recount."""
        # K=4 machines only have two parameter registers.
        profile = BenchmarkProfile(name="bitset", stmts=16, int_pool=8,
                                   max_params=2, max_call_args=2)
        for seed in range(12):
            func, machine = _prepared(profile, seed, k=4)
            ig = build_interference(func)
            for rclass in {v.rclass for v in ig.vregs()}:
                graph = build_alloc_graph(ig, machine, rclass)
                rng = random.Random(seed)
                self._check_degrees(graph)
                for _ in range(40):
                    if not graph.active:
                        break
                    roll = rng.random()
                    nodes = sorted(graph.active, key=lambda v: v.id)
                    a = rng.choice(nodes)
                    if roll < 0.3:
                        graph.remove(a)
                    elif roll < 0.6 and len(nodes) > 1:
                        b = rng.choice([n for n in nodes if n != a])
                        if not graph.interferes(a, b):
                            graph.merge(a, b)
                    elif roll < 0.8:
                        kept = rng.choice(
                            [p for p in graph.colors
                             if not graph.interferes(p, a)] or [None]
                        )
                        if kept is not None:
                            graph.merge(kept, a)
                    else:
                        b = rng.choice(nodes)
                        graph.add_edge(a, b)
                    self._check_degrees(graph)


class TestPipelineLevers:
    def _fingerprint(self, allocation):
        stats = allocation.stats
        return (
            stats.moves_eliminated,
            stats.spill_loads,
            stats.spill_stores,
            stats.spilled_webs,
            allocation.cycles.total,
            tuple(
                (res.func.name,
                 tuple(sorted((v.id, v.name, p.index)
                              for v, p in res.assignment.items())))
                for res in allocation.results
            ),
        )

    def test_cache_and_jobs_do_not_change_allocations(self):
        profile = BenchmarkProfile(name="bitset", n_functions=4, stmts=18,
                                   int_pool=8, float_pool=2)
        machine = make_machine(8)
        prepared = prepare_module(generate_module(profile, seed=7), machine)
        allocator = PreferenceDirectedAllocator()
        want = self._fingerprint(
            allocate_module(prepared, machine, allocator,
                            AllocationOptions(reuse_analyses=False))
        )
        cold = self._fingerprint(
            allocate_module(prepared, machine, allocator)
        )
        warm = self._fingerprint(
            allocate_module(prepared, machine, allocator)
        )
        fanned = self._fingerprint(
            allocate_module(prepared, machine, allocator,
                            AllocationOptions(jobs=2))
        )
        assert cold == want
        assert warm == want
        assert fanned == want

    def test_repeated_runs_are_deterministic(self):
        profile = BenchmarkProfile(name="bitset", n_functions=2, stmts=14,
                                   int_pool=6)
        machine = make_machine(8)
        prepared = prepare_module(generate_module(profile, seed=3), machine)
        runs = {
            self._fingerprint(
                allocate_module(prepared, machine,
                                PreferenceDirectedAllocator())
            ): None
            for _ in range(3)
        }
        assert len(runs) == 1


def test_colored_nodes_are_registers_smoke():
    """Every assignment maps a vreg to a physical register of its class."""
    profile = BenchmarkProfile(name="bitset", n_functions=2, stmts=14,
                               int_pool=6, float_pool=2)
    machine = make_machine(8)
    prepared = prepare_module(generate_module(profile, seed=11), machine)
    allocation = allocate_module(prepared, machine,
                                 PreferenceDirectedAllocator())
    for result in allocation.results:
        for vreg, preg in result.assignment.items():
            assert isinstance(vreg, VReg)
            assert isinstance(preg, PReg)
            assert vreg.rclass is preg.rclass
