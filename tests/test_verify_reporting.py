"""The allocation verifier and the reporting helpers."""

import pytest

from repro.errors import AllocationVerifyError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    ConstInst,
    Move,
    Ret,
    SpillLoad,
    SpillStore,
)
from repro.ir.values import PReg, VReg
from repro.regalloc.verify import (
    verify_allocation,
    verify_assignment_against_interference,
)
from repro.reporting import format_ratio_table, format_table, geomean
from repro.target.presets import make_machine


class TestVerifyAllocation:
    def test_surviving_vreg_detected(self):
        machine = make_machine(8)
        func = Function("f", blocks=[BasicBlock("e", [
            Move(PReg(0), VReg(1)), Ret()
        ])])
        with pytest.raises(AllocationVerifyError, match="virtual"):
            verify_allocation(func, machine)

    def test_register_outside_file_detected(self):
        machine = make_machine(8)
        func = Function("f", blocks=[BasicBlock("e", [
            ConstInst(PReg(99), 1), Ret()
        ])])
        with pytest.raises(AllocationVerifyError, match="not in the"):
            verify_allocation(func, machine)

    def test_reload_from_unwritten_slot_detected(self):
        machine = make_machine(8)
        func = Function("f", blocks=[BasicBlock("e", [
            SpillLoad(PReg(0), 7), Ret()
        ])])
        with pytest.raises(AllocationVerifyError, match="never-written"):
            verify_allocation(func, machine)

    def test_clean_code_passes(self):
        machine = make_machine(8)
        func = Function("f", blocks=[BasicBlock("e", [
            ConstInst(PReg(0), 1),
            SpillStore(0, PReg(0)),
            SpillLoad(PReg(1), 0),
            Ret(None, reg_uses=[PReg(1)]),
        ])])
        verify_allocation(func, machine)


class TestVerifyAssignment:
    def _interfering_pair(self):
        x, y, z = VReg(0, name="x"), VReg(1, name="y"), VReg(2, name="z")
        func = Function("f", blocks=[BasicBlock("e", [
            ConstInst(x, 1),
            ConstInst(y, 2),
            BinOp("add", z, x, y),
            Ret(z),
        ])])
        return func, x, y, z

    def test_shared_register_detected(self):
        func, x, y, z = self._interfering_pair()
        bad = {x: PReg(0), y: PReg(0), z: PReg(1)}
        with pytest.raises(AllocationVerifyError, match="share"):
            verify_assignment_against_interference(func, bad)

    def test_good_assignment_passes(self):
        func, x, y, z = self._interfering_pair()
        good = {x: PReg(0), y: PReg(1), z: PReg(0)}
        verify_assignment_against_interference(func, good)

    def test_missing_assignment_detected(self):
        func, x, y, z = self._interfering_pair()
        with pytest.raises(AllocationVerifyError, match="unassigned"):
            verify_assignment_against_interference(func, {x: PReg(0)})

    def test_conflict_with_physical_detected(self):
        x = VReg(0, name="x")
        func = Function("f", blocks=[BasicBlock("e", [
            ConstInst(x, 1),
            ConstInst(PReg(3), 2),     # PReg(3) live range overlaps x
            BinOp("add", PReg(4), x, PReg(3)),
            Ret(None, reg_uses=[PReg(4)]),
        ])])
        with pytest.raises(AllocationVerifyError, match="interferes"):
            verify_assignment_against_interference(func, {x: PReg(3)})


class TestReporting:
    def test_geomean(self):
        assert geomean([1, 1, 1]) == pytest.approx(1.0)
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0, 4]) == pytest.approx(4.0)  # non-positive dropped

    def test_format_table_alignment(self):
        text = format_table(
            "T", ["row1"], ["colA", "colB"],
            {("row1", "colA"): 1.5, ("row1", "colB"): 2.0},
        )
        assert "T" in text and "colA" in text
        assert "1.500" in text and "2.000" in text
        assert "geo. mean" in text

    def test_missing_cells_dashed(self):
        text = format_table("T", ["r"], ["a", "b"], {("r", "a"): 1.0})
        assert "-" in text

    def test_ratio_table_normalizes(self):
        raw = {
            ("jess", "base"): 10.0,
            ("jess", "ours"): 5.0,
            ("db", "base"): 4.0,
            ("db", "ours"): 8.0,
        }
        text = format_ratio_table("T", ["jess", "db"], ["base", "ours"],
                                  raw, base_column="base")
        assert "0.500" in text and "2.000" in text
        assert "base" not in text.splitlines()[2]

    def test_ratio_table_zero_base(self):
        raw = {("r", "base"): 0.0, ("r", "ours"): 0.0}
        text = format_ratio_table("T", ["r"], ["base", "ours"], raw,
                                  base_column="base")
        assert "1.000" in text
