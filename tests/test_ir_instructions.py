"""Instruction operand interface: uses/defs/replace, flags, targets."""

from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, PReg, VReg

A, B, C = VReg(0, name="a"), VReg(1, name="b"), VReg(2, name="c")
R0, R1 = PReg(0), PReg(1)


class TestUsesDefs:
    def test_const(self):
        instr = ConstInst(A, 5)
        assert instr.uses() == []
        assert instr.defs() == [A]

    def test_move(self):
        instr = Move(A, B)
        assert instr.uses() == [B]
        assert instr.defs() == [A]
        assert instr.is_move

    def test_binop(self):
        instr = BinOp("add", A, B, Const(1))
        assert instr.uses() == [B, Const(1)]
        assert instr.used_regs() == [B]
        assert instr.defs() == [A]

    def test_unary(self):
        instr = UnaryOp("neg", A, B)
        assert instr.uses() == [B]
        assert instr.defs() == [A]

    def test_load_store(self):
        load = Load(A, B, 8)
        assert load.uses() == [B]
        assert load.defs() == [A]
        store = Store(B, 8, A)
        assert set(store.uses()) == {A, B}
        assert store.defs() == []

    def test_spill(self):
        assert SpillLoad(A, 3).defs() == [A]
        assert SpillLoad(A, 3).uses() == []
        assert SpillStore(3, A).uses() == [A]
        assert SpillStore(3, A).defs() == []

    def test_call_unlowered(self):
        call = Call("f", [B, Const(2)], A)
        assert call.uses() == [B, Const(2)]
        assert call.defs() == [A]
        assert not call.lowered

    def test_call_lowered(self):
        call = Call("f", reg_uses=[R0], reg_defs=[R1])
        assert call.uses() == [R0]
        assert call.defs() == [R1]
        assert call.lowered

    def test_phi(self):
        phi = Phi(A, {"b1": B, "b2": Const(0)})
        assert set(phi.uses()) == {B, Const(0)}
        assert phi.defs() == [A]

    def test_ret(self):
        assert Ret(A).uses() == [A]
        assert Ret(None, reg_uses=[R0]).uses() == [R0]
        assert Ret().uses() == []


class TestTerminators:
    def test_flags(self):
        assert Jump("x").is_terminator
        assert Branch(A, "x", "y").is_terminator
        assert Ret().is_terminator
        assert not Move(A, B).is_terminator

    def test_targets(self):
        assert Jump("x").block_targets() == ("x",)
        assert Branch(A, "x", "y").block_targets() == ("x", "y")
        assert Ret().block_targets() == ()
        assert Move(A, B).block_targets() == ()


class TestReplace:
    def test_replace_all_slots(self):
        instr = BinOp("add", A, A, B)
        instr.replace({A: C})
        assert instr.dst == C and instr.lhs == C and instr.rhs == B

    def test_replace_uses_keeps_dst(self):
        instr = BinOp("add", A, A, Const(1))
        instr.replace_uses({A: C})
        assert instr.dst == A and instr.lhs == C

    def test_replace_defs_keeps_uses(self):
        instr = BinOp("add", A, A, Const(1))
        instr.replace_defs({A: C})
        assert instr.dst == C and instr.lhs == A

    def test_replace_phi(self):
        phi = Phi(A, {"b": B})
        phi.replace({B: C, A: C})
        assert phi.dst == C and phi.incoming == {"b": C}

    def test_replace_store_has_no_defs(self):
        store = Store(B, 0, A)
        store.replace_defs({A: C, B: C})
        assert store.src == A and store.base == B

    def test_identity_by_object(self):
        a, b = Move(A, B), Move(A, B)
        assert a != b  # eq=False: instructions are identity-hashable
        assert len({a, b}) == 2


class TestStr:
    def test_formats(self):
        assert str(Move(A, B)) == "%a = %b"
        assert str(Load(A, B, 4)) == "%a = load [%b+4]"
        assert str(Load(A, B, 4, "byte")) == "%a = load.b [%b+4]"
        assert str(Store(B, 0, A)) == "store [%b+0] = %a"
        assert str(Jump("L")) == "jump L"
        assert str(SpillLoad(A, 2)) == "%a = reload slot2"
        assert str(SpillStore(2, A)) == "spill slot2 = %a"
