"""Pipeline orchestration and the synthetic workload generator."""

import pytest

from repro.core import PreferenceDirectedAllocator
from repro.ir.printer import print_module
from repro.ir.validate import validate_module
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import ChaitinAllocator
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import high_pressure, middle_pressure
from repro.workloads import (
    BENCHMARK_NAMES,
    SPEC_PROFILES,
    generate_function,
    generate_module,
    make_benchmark,
    make_suite,
)


class TestGeneratorDeterminism:
    def test_same_seed_same_module(self):
        a = generate_module(SPEC_PROFILES["jess"], seed=3)
        b = generate_module(SPEC_PROFILES["jess"], seed=3)
        assert print_module(a) == print_module(b)

    def test_different_seeds_differ(self):
        a = generate_module(SPEC_PROFILES["jess"], seed=3)
        b = generate_module(SPEC_PROFILES["jess"], seed=4)
        assert print_module(a) != print_module(b)

    def test_benchmarks_differ_from_each_other(self):
        assert print_module(make_benchmark("jess")) != \
            print_module(make_benchmark("db"))


class TestGeneratorStructure:
    def test_all_benchmarks_validate(self):
        for name in BENCHMARK_NAMES:
            validate_module(make_benchmark(name))

    def test_function_counts_match_profiles(self):
        for name, profile in SPEC_PROFILES.items():
            module = make_benchmark(name)
            assert len(module.functions) == profile.n_functions

    def test_float_benchmarks_have_float_code(self):
        from repro.ir.values import RegClass

        module = make_benchmark("mpegaudio")
        float_regs = [
            v for f in module.functions for v in f.vregs()
            if v.rclass is RegClass.FLOAT
        ]
        assert float_regs

    def test_compress_has_byte_loads(self):
        from repro.ir.instructions import Load

        module = make_benchmark("compress")
        byte_loads = [
            i for f in module.functions for _, i in f.instructions()
            if isinstance(i, Load) and i.width == "byte"
        ]
        assert byte_loads

    def test_call_heavy_profiles_have_more_calls(self):
        from repro.ir.instructions import Call

        def call_density(name):
            module = make_benchmark(name)
            calls = sum(
                isinstance(i, Call)
                for f in module.functions for _, i in f.instructions()
            )
            return calls / module.instruction_count()

        assert call_density("jess") > call_density("compress")

    def test_every_function_terminates_under_interpretation(self):
        module = make_benchmark("javac")
        for func in module.functions:
            args = [64 * (i + 1) for i in range(len(func.params))]
            result = run_function(func, args, memory=Memory(),
                                  step_limit=300_000)
            assert result.steps > 0

    def test_generate_function_standalone(self):
        func = generate_function("solo", SPEC_PROFILES["db"], seed=11)
        assert func.name == "solo"
        assert func.instruction_count() > 10


class TestSuite:
    def test_make_suite_default_names(self):
        suite = make_suite(["jess", "db"])
        assert list(suite) == ["jess", "db"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark("quake")


class TestPipeline:
    def test_prepare_leaves_original_untouched(self):
        module = make_benchmark("jack")
        before = print_module(module)
        prepare_module(module, middle_pressure())
        assert print_module(module) == before

    def test_prepared_module_is_lowered(self):
        from repro.ir.instructions import Call, Phi

        machine = middle_pressure()
        prepared = prepare_module(make_benchmark("jack"), machine)
        for func in prepared.functions:
            for _, instr in func.instructions():
                assert not isinstance(instr, Phi)
                if isinstance(instr, Call):
                    assert instr.lowered

    def test_allocate_module_aggregates(self):
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("jess"), machine)
        run = allocate_module(prepared, machine, ChaitinAllocator())
        assert len(run.results) == len(prepared.functions)
        assert run.stats.moves_before == sum(
            r.stats.moves_before for r in run.results
        )
        assert run.cycles.total > 0

    def test_allocate_module_does_not_mutate_prepared(self):
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("db"), machine)
        before = print_module(prepared)
        allocate_module(prepared, machine, PreferenceDirectedAllocator())
        assert print_module(prepared) == before

    def test_two_allocators_same_input_metrics_comparable(self):
        machine = high_pressure()
        prepared = prepare_module(make_benchmark("db"), machine)
        a = allocate_module(prepared, machine, ChaitinAllocator())
        b = allocate_module(prepared, machine,
                            PreferenceDirectedAllocator())
        assert a.stats.moves_before == b.stats.moves_before
