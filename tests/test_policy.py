"""The :class:`repro.policy.Policy` surface: validation, serialization,
digest stability, preset loading, and — most load-bearing — the
byte-identity contract: a default-valued policy must reproduce the
pre-policy allocator bit for bit.  The fingerprints and result stats
pinned below were captured on the commit *before* the policy layer
landed; if any of them moves, default traffic changed behavior and the
contract is broken.
"""

from __future__ import annotations

import json
from dataclasses import FrozenInstanceError
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.printer import print_module
from repro.pipeline import allocate_module, prepare_function, prepare_module
from repro.policy import (
    DEFAULT_DEGRADATION_LADDER,
    DEFAULT_POLICY,
    Policy,
    available_presets,
    load_policy,
    preset_path,
)
from repro.regalloc import allocate_function, verify_allocation
from repro.regalloc.base import AllocationOptions
from repro.service.cache import request_fingerprint
from repro.service.scheduler import (
    ALLOCATOR_FACTORIES,
    DEGRADATION_LADDER,
    degrade_for,
)
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.suite import make_benchmark

REPO_ROOT = Path(__file__).resolve().parent.parent

#: sha256 of the default policy's canonical JSON.  Changing any field
#: name, default, or the canonical form moves this — which silently
#: *preserves* old cache fingerprints for traffic that pins the old
#: digest, so bump it consciously.
DEFAULT_DIGEST = \
    "71424194846dd9aa5c5febc0f1b9ad1ef94d97a84ab5ecfedd318d51795c515f"

# ---------------------------------------------------------------------------
# Pre-policy pins (captured with the literals still inlined in the code)
# ---------------------------------------------------------------------------

AXPY_IR = """func axpy(%p0, %p1) -> value {
entry:
  %a = mul %p0, 2
  %b = add %a, %p1
  ret %b
}
"""

#: request_fingerprint pins under the *default* options.  These are the
#: cache keys of real pre-PR traffic: a default policy must not move
#: them, or every deployed cache entry is orphaned.
PINNED_FINGERPRINTS = {
    # (ir-producer, allocator, regs) -> hex digest
    "axpy/full/m8":
        "75eea572d9dab2406e3df6feed5b4f8288b62fc8478649ba6388f758effc1375",
    "spillstress/full/m12":
        "0ce86c091fdf45487a2951d368461f4f61e9ca2a0c007dcb24f867e2be7329f5",
    "jess/full/m12":
        "3ec79ea41d3ad27c31d8aadf74ba23074cb55a7382bcdade4c063fd8426aaa6d",
}

#: (moves_eliminated, spill_loads + spill_stores, spilled_webs,
#:  cycles.total, rounds) on spillstress(seed=0) at K=12, per allocator.
PINNED_SPILLSTRESS_STATS = {
    "full": (152, 408, 204, 56448.0, 4),
    "chaitin": (296, 408, 204, 59008.0, 4),
    "briggs": (296, 408, 204, 59008.0, 4),
    "callcost": (296, 408, 204, 59008.0, 4),
    "priority": (164, 376, 188, 59412.0, 3),
}


@pytest.fixture(scope="module")
def spillstress_m12():
    machine = make_machine(12)
    module = make_benchmark("spillstress", seed=0)
    return prepare_module(module, machine), machine


class TestPolicyValue:
    def test_default_is_default(self):
        assert Policy() == DEFAULT_POLICY
        assert Policy().is_default()
        assert DEFAULT_POLICY.digest() == DEFAULT_DIGEST

    def test_any_field_change_is_not_default(self):
        assert not Policy(save_restore_cost=4).is_default()
        assert not Policy(loop_depth_exponent=1.5).is_default()
        assert not Policy(spill_tie_break=("name", "id")).is_default()

    def test_frozen_and_hashable(self):
        policy = Policy()
        with pytest.raises(FrozenInstanceError):
            policy.save_restore_cost = 9
        assert len({Policy(), Policy(), Policy(callee_save_cost=3)}) == 2

    def test_replace(self):
        tuned = DEFAULT_POLICY.replace(spill_degree_exponent=2.0)
        assert tuned.spill_degree_exponent == 2.0
        assert DEFAULT_POLICY.spill_degree_exponent == 1.0
        with pytest.raises(ValueError):
            DEFAULT_POLICY.replace(spill_load_cost=-1)

    def test_int_coercion_is_exact(self):
        # Weight fields coerce to float; int-typed cost fields stay int
        # (they feed int arithmetic on the historical path).
        policy = Policy(loop_depth_exponent=1)
        assert policy.loop_depth_exponent == 1.0
        assert isinstance(policy.loop_depth_exponent, float)
        assert policy.is_default()
        assert isinstance(Policy().save_restore_cost, int)


class TestValidation:
    @pytest.mark.parametrize("field", ["save_restore_cost",
                                       "callee_save_cost",
                                       "spill_load_cost",
                                       "spill_store_cost"])
    def test_costs_must_be_nonnegative_ints(self, field):
        for bad in (-1, 1.5, True, "2", None):
            with pytest.raises(ValueError):
                Policy(**{field: bad})

    @pytest.mark.parametrize("field", ["loop_depth_exponent",
                                       "spill_cost_exponent",
                                       "spill_degree_exponent",
                                       "select_differential_weight",
                                       "select_spill_cost_weight",
                                       "select_id_weight"])
    def test_weights_must_be_finite_positive(self, field):
        for bad in (0.0, -0.5, float("nan"), float("inf"), True, "1"):
            with pytest.raises(ValueError):
                Policy(**{field: bad})

    def test_tie_break_rules(self):
        assert Policy(spill_tie_break=("name", "id")).spill_tie_break \
            == ("name", "id")
        for bad in ((), ("name",), ("id", "id"), ("id", "bogus")):
            with pytest.raises(ValueError):
                Policy(spill_tie_break=bad)

    def test_ladder_rules(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            Policy(degradation_ladder=(("full", "nosuch"),))
        with pytest.raises(ValueError, match="degrades to itself"):
            Policy(degradation_ladder=(("full", "full"),))
        with pytest.raises(ValueError, match="duplicate"):
            Policy(degradation_ladder=(("full", "chaitin"),
                                       ("full", "briggs")))

    def test_ladder_canonicalized(self):
        shuffled = tuple(reversed(DEFAULT_DEGRADATION_LADDER))
        policy = Policy(degradation_ladder=shuffled)
        assert policy.degradation_ladder == DEFAULT_DEGRADATION_LADDER
        assert policy.is_default()
        assert policy.digest() == DEFAULT_DIGEST

    def test_options_reject_non_policy(self):
        with pytest.raises(ValueError, match="policy"):
            AllocationOptions(policy={"save_restore_cost": 3})


class TestSerialization:
    def test_json_round_trip(self):
        tuned = Policy(spill_degree_exponent=2.0,
                       select_spill_cost_weight=1.5,
                       spill_tie_break=("name", "id"))
        for indent in (None, 2):
            again = Policy.from_json(tuned.to_json(indent=indent))
            assert again == tuned
            assert again.digest() == tuned.digest()

    def test_digest_tracks_content_not_identity(self):
        assert Policy().digest() == Policy().digest() == DEFAULT_DIGEST
        assert Policy(callee_save_cost=3).digest() != DEFAULT_DIGEST

    def test_from_dict_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown policy field"):
            Policy.from_dict({"save_restore_cost": 3, "typo_field": 1})
        with pytest.raises(ValueError):
            Policy.from_dict(["not", "a", "dict"])

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ValueError, match="invalid policy JSON"):
            Policy.from_json("{nope")
        with pytest.raises(ValueError):
            Policy.from_json('{"degradation_ladder": ["full"]}')

    def test_wire_shapes_are_json_safe(self):
        payload = json.loads(Policy().to_json())
        assert payload["degradation_ladder"] == [
            list(pair) for pair in DEFAULT_DEGRADATION_LADDER
        ]
        assert payload["spill_tie_break"] == ["id", "name"]


class TestDegradationLadder:
    def test_scheduler_mirror(self):
        assert DEGRADATION_LADDER == DEFAULT_POLICY.ladder_map()

    def test_degrade_for_default(self):
        assert degrade_for("full") == "chaitin"
        assert degrade_for("iterated") == "briggs"
        assert degrade_for("chaitin") == "chaitin"  # terminal floor

    def test_degrade_for_custom_ladder(self):
        policy = Policy(degradation_ladder=(("full", "briggs"),
                                            ("briggs", "chaitin")))
        assert degrade_for("full", policy) == "briggs"
        assert degrade_for("briggs", policy) == "chaitin"
        # Unlisted allocators fall straight to the floor.
        assert degrade_for("priority", policy) == "chaitin"


class TestFingerprintPins:
    """Default-policy fingerprints must equal the pre-policy values."""

    def test_axpy_pin(self):
        fp = request_fingerprint(AXPY_IR, make_machine(8), "full",
                                 options=AllocationOptions())
        assert fp == PINNED_FINGERPRINTS["axpy/full/m8"]

    def test_spillstress_pin(self, spillstress_m12):
        prepared, machine = spillstress_m12
        fp = request_fingerprint(print_module(prepared), machine, "full",
                                 options=AllocationOptions())
        assert fp == PINNED_FINGERPRINTS["spillstress/full/m12"]

    def test_jess_pin(self):
        machine = make_machine(12)
        prepared = prepare_module(make_benchmark("jess", seed=0), machine)
        fp = request_fingerprint(print_module(prepared), machine, "full",
                                 options=AllocationOptions())
        assert fp == PINNED_FINGERPRINTS["jess/full/m12"]

    def test_non_default_policy_moves_the_fingerprint(self):
        machine = make_machine(8)
        base = request_fingerprint(AXPY_IR, machine, "full",
                                   options=AllocationOptions())
        tuned = AllocationOptions(policy=Policy(spill_cost_exponent=1.25))
        moved = request_fingerprint(AXPY_IR, machine, "full", options=tuned)
        assert moved != base
        # ... and distinct non-default policies get distinct keys.
        other = AllocationOptions(policy=Policy(spill_cost_exponent=0.75))
        assert request_fingerprint(AXPY_IR, machine, "full",
                                   options=other) not in (base, moved)

    def test_explicit_default_policy_is_a_noop(self):
        machine = make_machine(8)
        explicit = AllocationOptions(policy=Policy())
        assert request_fingerprint(
            AXPY_IR, machine, "full", options=explicit
        ) == PINNED_FINGERPRINTS["axpy/full/m8"]


class TestResultPins:
    """Allocation *results* under the default policy, pinned per
    allocator.  This is the strongest byte-identity check: any drift in
    cost constants, spill scoring, selector keys, or round behavior
    shows up here."""

    @pytest.mark.parametrize("name", sorted(PINNED_SPILLSTRESS_STATS))
    def test_spillstress_stats_pin(self, spillstress_m12, name):
        prepared, machine = spillstress_m12
        result = allocate_module(prepared, machine,
                                 ALLOCATOR_FACTORIES[name]())
        stats = result.stats
        observed = (stats.moves_eliminated,
                    stats.spill_loads + stats.spill_stores,
                    stats.spilled_webs,
                    result.cycles.total,
                    stats.rounds)
        assert observed == PINNED_SPILLSTRESS_STATS[name]

    def test_explicit_default_policy_matches_pin(self, spillstress_m12):
        prepared, machine = spillstress_m12
        result = allocate_module(
            prepared, machine, ALLOCATOR_FACTORIES["full"](),
            options=AllocationOptions(policy=Policy()),
        )
        stats = result.stats
        assert (stats.moves_eliminated,
                stats.spill_loads + stats.spill_stores,
                stats.spilled_webs,
                result.cycles.total,
                stats.rounds) == PINNED_SPILLSTRESS_STATS["full"]


class TestPresets:
    def test_load_none_is_default(self):
        assert load_policy(None) is DEFAULT_POLICY

    def test_tuned_v1_is_committed_and_non_default(self):
        assert "tuned_v1" in available_presets()
        tuned = load_policy("tuned_v1")
        assert not tuned.is_default()

    def test_tuned_v1_matches_the_committed_tuning_report(self):
        report_path = REPO_ROOT / "BENCH_policy_tuning.json"
        report = json.loads(report_path.read_text())
        tuned = load_policy("tuned_v1")
        assert tuned.digest() == report["best"]["digest"]
        assert tuned == Policy.from_dict(report["best"]["policy"])

    def test_unknown_preset_lists_alternatives(self):
        with pytest.raises(ValueError, match="tuned_v1"):
            load_policy("nosuch")

    def test_file_path_loading(self, tmp_path):
        path = tmp_path / "mine.json"
        policy = Policy(save_restore_cost=5)
        path.write_text(policy.to_json(indent=2))
        assert load_policy(str(path)) == policy
        with pytest.raises(ValueError, match="not found"):
            load_policy(str(tmp_path / "missing.json"))
        assert preset_path("tuned_v1").is_file()


# ---------------------------------------------------------------------------
# Property: any valid policy yields verifiable allocations
# ---------------------------------------------------------------------------

_PROP_PROFILE = BenchmarkProfile(
    name="polprop", stmts=12, int_pool=6, call_prob=0.15,
    branch_prob=0.2, loop_prob=0.2, copy_prob=0.2, load_prob=0.15,
    store_prob=0.05, max_params=2, max_call_args=2,
)

policies = st.builds(
    Policy,
    save_restore_cost=st.integers(0, 6),
    callee_save_cost=st.integers(0, 5),
    spill_load_cost=st.integers(1, 4),
    spill_store_cost=st.integers(0, 3),
    loop_depth_exponent=st.sampled_from([0.5, 0.8, 1.0, 1.3, 2.0]),
    spill_cost_exponent=st.sampled_from([0.5, 0.75, 1.0, 1.25]),
    spill_degree_exponent=st.sampled_from([0.5, 1.0, 1.5, 2.0]),
    spill_tie_break=st.sampled_from([("id", "name"), ("name", "id"),
                                     ("id",)]),
    select_differential_weight=st.sampled_from([0.5, 1.0, 2.0]),
    select_spill_cost_weight=st.sampled_from([0.5, 1.0, 2.0]),
    select_id_weight=st.sampled_from([0.5, 1.0, 2.0]),
)


class TestPolicyProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(policy=policies, seed=st.integers(0, 10_000),
           allocator=st.sampled_from(["full", "chaitin", "priority"]))
    def test_any_policy_allocates_verifiably(self, policy, seed,
                                             allocator):
        machine = make_machine(6)
        func = generate_function("polprop", _PROP_PROFILE, seed)
        work = prepare_function(func, machine)
        allocate_function(
            work, machine, ALLOCATOR_FACTORIES[allocator](),
            options=AllocationOptions(policy=policy),
        )
        verify_allocation(work, machine)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(policy=policies)
    def test_digest_round_trips_for_any_policy(self, policy):
        again = Policy.from_json(policy.to_json())
        assert again == policy and again.digest() == policy.digest()
