"""Value kinds: identity, classes, printing."""

from repro.ir.values import Const, PReg, RegClass, VReg


class TestRegClass:
    def test_prefixes(self):
        assert RegClass.INT.prefix() == "v"
        assert RegClass.FLOAT.prefix() == "f"

    def test_two_classes_exist(self):
        assert len(RegClass) == 2


class TestVReg:
    def test_identity_by_fields(self):
        assert VReg(1) == VReg(1)
        assert VReg(1) != VReg(2)

    def test_class_distinguishes(self):
        assert VReg(1, RegClass.INT) != VReg(1, RegClass.FLOAT)

    def test_hashable(self):
        assert len({VReg(1), VReg(1), VReg(2)}) == 2

    def test_str_unnamed(self):
        assert str(VReg(3)) == "%v3"
        assert str(VReg(3, RegClass.FLOAT)) == "%f3"

    def test_str_named(self):
        assert str(VReg(3, name="acc")) == "%acc"

    def test_no_spill_flag_default_false(self):
        assert not VReg(0).no_spill
        assert VReg(0, no_spill=True).no_spill


class TestPReg:
    def test_str(self):
        assert str(PReg(4)) == "$r4"
        assert str(PReg(4, RegClass.FLOAT)) == "$fr4"
        assert str(PReg(4, name="sp")) == "$sp"

    def test_distinct_from_vreg(self):
        assert PReg(1) != VReg(1)

    def test_identity(self):
        assert PReg(1) == PReg(1)
        assert PReg(1) != PReg(1, RegClass.FLOAT)


class TestConst:
    def test_str(self):
        assert str(Const(42)) == "42"
        assert str(Const(2.5, RegClass.FLOAT)) == "2.5"

    def test_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)
