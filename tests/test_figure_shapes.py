"""Fast integration checks of the evaluation's headline shapes.

The full sweep lives in ``benchmarks/`` (every figure, every model);
these tests assert the same qualitative claims on a single benchmark and
model each so that plain ``pytest tests/`` also guards the paper's
conclusions.
"""

import pytest

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import ChaitinAllocator, OptimisticCoalescingAllocator
from repro.target.presets import high_pressure
from repro.workloads import make_benchmark


@pytest.fixture(scope="module")
def jess_runs():
    machine = high_pressure()
    prepared = prepare_module(make_benchmark("jess"), machine)
    return {
        name: allocate_module(prepared, machine, factory())
        for name, factory in [
            ("chaitin", ChaitinAllocator),
            ("optimistic", OptimisticCoalescingAllocator),
            ("only", lambda: PreferenceDirectedAllocator(
                PreferenceConfig.only_coalescing())),
            ("full", PreferenceDirectedAllocator),
        ]
    }


class TestFigure9Shape:
    def test_coalescing_comparable_to_aggressive(self, jess_runs):
        base = jess_runs["chaitin"].stats.moves_eliminated
        ours = jess_runs["only"].stats.moves_eliminated
        assert ours >= 0.85 * base

    def test_spills_not_worse_than_base(self, jess_runs):
        assert jess_runs["only"].stats.spill_instructions <= \
            jess_runs["chaitin"].stats.spill_instructions + 4


class TestFigure10Shape:
    def test_full_preferences_fastest(self, jess_runs):
        full = jess_runs["full"].cycles.total
        assert full < jess_runs["only"].cycles.total
        assert full < jess_runs["optimistic"].cycles.total
        assert full < jess_runs["chaitin"].cycles.total

    def test_volatility_drives_the_win(self, jess_runs):
        # on the call-heavy test the caller-save component dominates the
        # difference between full preferences and the coalescing-only
        # allocators
        full = jess_runs["full"].cycles
        base = jess_runs["optimistic"].cycles
        assert full.caller_save_cycles < base.caller_save_cycles


class TestFigure7Shape:
    def test_worked_example(self):
        from repro.regalloc import allocate_function
        from repro.sim.cycles import estimate_cycles
        from repro.target.lowering import lower_function
        from repro.target.presets import figure7_machine
        from repro.workloads.figures import figure7_function

        machine = figure7_machine()
        func = figure7_function()
        lower_function(func, machine)
        result = allocate_function(func, machine,
                                   PreferenceDirectedAllocator())
        assert result.stats.moves_eliminated == 3
        assert estimate_cycles(func, machine).paired_loads_fused == 1
