"""The numpy bit-matrix dataflow backend vs the retained int oracles.

``REPRO_DATAFLOW`` selects the engine behind liveness, interference and
the CPG replay (:mod:`repro.analysis.matrix`); the int-mask kernels are
kept as reference oracles.  These tests pin the two backends together
mask-for-mask on random programs (fresh analyses and SpillDelta-patched
spill rounds), force the genuinely vectorized branches that small
functions normally stay below, prove validate mode detects an injected
divergence in each of the three kernels, and check the whole-allocation
decision sequence is backend-independent.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import matrix
from repro.analysis.interference import build_interference
from repro.analysis.liveness import compute_liveness
from repro.cfg.analysis import build_cfg
from repro.core import PreferenceDirectedAllocator
from repro.core import cpg as cpg_mod
from repro.errors import AllocationError
from repro.ir.clone import clone_function
from repro.pipeline import prepare_function
from repro.regalloc import ChaitinAllocator, allocate_function
from repro.regalloc.igraph import build_alloc_graph
from repro.sim.cycles import estimate_cycles
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("matrix"),
    stmts=st.integers(4, 16),
    int_pool=st.integers(3, 8),
    float_pool=st.integers(0, 3),
    call_prob=st.floats(0.0, 0.3),
    branch_prob=st.floats(0.0, 0.3),
    loop_prob=st.floats(0.0, 0.25),
    max_loop_depth=st.integers(1, 2),
    copy_prob=st.floats(0.0, 0.3),
    load_prob=st.floats(0.0, 0.3),
    store_prob=st.floats(0.0, 0.15),
    max_params=st.integers(1, 2),
    max_call_args=st.integers(1, 2),
)

needs_numpy = pytest.mark.skipif(
    not matrix.have_numpy(), reason="numpy not available"
)


@contextmanager
def dataflow(mode: str):
    prior = os.environ.get("REPRO_DATAFLOW")
    os.environ["REPRO_DATAFLOW"] = mode
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_DATAFLOW", None)
        else:
            os.environ["REPRO_DATAFLOW"] = prior


@contextmanager
def forced_matrix_branches():
    """Drop both size thresholds so the vectorized paths always engage."""
    cells, nodes = matrix.MATRIX_MIN_CELLS, cpg_mod.MATRIX_MIN_NODES
    matrix.MATRIX_MIN_CELLS = 0
    cpg_mod.MATRIX_MIN_NODES = 0
    try:
        yield
    finally:
        matrix.MATRIX_MIN_CELLS = cells
        cpg_mod.MATRIX_MIN_NODES = nodes


def _prepared(profile, seed, k=8):
    machine = make_machine(k)
    func = prepare_function(generate_function("matrix", profile, seed),
                            machine)
    return func, machine


def _liveness_pair(func):
    cfg = build_cfg(func)
    with dataflow("numpy"):
        fast = compute_liveness(func, cfg)
    with dataflow("int"):
        ref = compute_liveness(func, cfg)
    return fast, ref


def _assert_liveness_equal(fast, ref):
    assert fast.index.regs == ref.index.regs
    for name in ("live_in_mask", "live_out_mask", "use_mask", "defs_mask"):
        assert getattr(fast, name) == getattr(ref, name), name
    # Set materialization (lazy on the numpy side) decodes to the same
    # dicts in the same insertion order — downstream iteration order is
    # observable.
    for name in ("live_in", "live_out", "use", "defs"):
        got, want = getattr(fast, name), getattr(ref, name)
        assert list(got) == list(want), name
        assert got == want, name


@needs_numpy
class TestLivenessBackends:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_masks_and_lazy_sets_match_int(self, profile, seed):
        func, _ = _prepared(profile, seed)
        fast, ref = _liveness_pair(func)
        _assert_liveness_equal(fast, ref)

    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_forced_matrix_sweeps_match_int(self, profile, seed):
        # Below MATRIX_MIN_CELLS the numpy backend normally keeps the
        # int worklist schedule; force the row-sweep branch so it is the
        # thing being compared.
        func, _ = _prepared(profile, seed)
        with forced_matrix_branches():
            fast, ref = _liveness_pair(func)
        _assert_liveness_equal(fast, ref)


@needs_numpy
class TestInterferenceBackends:
    @SLOW
    @given(profile=profiles, seed=st.integers(0, 10_000))
    def test_rows_moves_and_block_rows_match_int(self, profile, seed):
        func, _ = _prepared(profile, seed)
        with dataflow("numpy"):
            fast = build_interference(func, collect_block_rows=True)
        with dataflow("int"):
            ref = build_interference(func, collect_block_rows=True)
        assert [(m.dst, m.src) for m in fast.moves] \
            == [(m.dst, m.src) for m in ref.moves]
        assert fast.block_rows == ref.block_rows
        # row_set (batch-decoded off the matrix) against the int rows.
        for node in ref.index.regs:
            assert fast.row_set(node) == ref.row_set(node), node
        # Lazy materialization produces the same adjacency dict, same
        # node insertion order.
        assert list(fast.adjacency) == list(ref.adjacency)
        assert fast.adjacency == ref.adjacency


@needs_numpy
class TestCPGBackends:
    def _graph_inputs(self, func, machine):
        from repro.regalloc.simplify import simplify

        with dataflow("numpy"):
            ig = build_interference(func)
        rclasses = {v.rclass for v in ig.vregs()}
        out = []
        for rclass in rclasses:
            graph = build_alloc_graph(ig, machine, rclass)
            wig = graph.snapshot_active_adjacency()
            simp = simplify(graph, optimistic=True)
            out.append((graph, wig, simp))
        return out

    def test_wig_rows_fast_path_matches_dict_encode(self):
        profile = BenchmarkProfile(name="matrix", stmts=20, int_pool=8,
                                   float_pool=2, max_params=2,
                                   max_call_args=2)
        checked = 0
        for seed in range(8):
            func, machine = _prepared(profile, seed)
            for graph, wig, _ in self._graph_inputs(func, machine):
                if not cpg_mod._wig_rows_usable(graph, wig):
                    continue
                checked += 1
                assert cpg_mod._wig_rows_matrix(graph, wig) \
                    == cpg_mod._wig_rows(graph, wig)
        assert checked, "fast path never engaged"

    def test_adjacency_mutation_disables_fast_path(self):
        profile = BenchmarkProfile(name="matrix", stmts=20, int_pool=8,
                                   max_params=2, max_call_args=2)
        func, machine = _prepared(profile, 1)
        (graph, wig, _), *_ = self._graph_inputs(func, machine)
        assert cpg_mod._wig_rows_usable(graph, wig)
        nodes = sorted(wig, key=lambda v: v.id)
        pair = [(a, b) for a in nodes for b in nodes
                if a is not b and b not in graph.adj[a]]
        if not pair:
            pytest.skip("complete graph; nothing to add")
        graph.add_edge(*pair[0])
        assert not cpg_mod._wig_rows_usable(graph, wig)

    def test_forced_matrix_closure_matches_int(self):
        profile = BenchmarkProfile(name="matrix", stmts=24, int_pool=8,
                                   branch_prob=0.2, loop_prob=0.2,
                                   max_params=2, max_call_args=2)
        for seed in range(6):
            func, machine = _prepared(profile, seed)
            for graph, wig, simp in self._graph_inputs(func, machine):
                with forced_matrix_branches():
                    got = cpg_mod._build_cpg_matrix(graph, wig, simp)
                want = cpg_mod._build_cpg_int(graph, wig, simp)
                assert not cpg_mod._compare_cpgs(got, want)


@needs_numpy
class TestValidateDetectsDivergence:
    """validate mode raises on the first injected backend divergence."""

    def _func(self):
        profile = BenchmarkProfile(name="matrix", stmts=12, int_pool=6,
                                   max_params=2, max_call_args=2)
        return _prepared(profile, 3)

    def test_corrupted_liveness_mask(self, monkeypatch):
        func, _ = self._func()
        real = matrix.solve_liveness

        def corrupted(pack, cfg):
            live_in, live_out = real(pack, cfg)
            label = next(iter(live_out))
            live_out[label] ^= 1  # flip one register's liveness
            return live_in, live_out

        monkeypatch.setattr(matrix, "solve_liveness", corrupted)
        with dataflow("validate"):
            with pytest.raises(AllocationError, match="liveness"):
                compute_liveness(func)

    def test_corrupted_interference_matrix(self, monkeypatch):
        func, _ = self._func()
        real = matrix.symmetrize_matrix

        def corrupted(m, n_bits):
            sym = real(m, n_bits)
            if sym.shape[0]:
                sym[0, 0] ^= matrix._numpy().uint64(1)
            return sym

        monkeypatch.setattr(matrix, "symmetrize_matrix", corrupted)
        with dataflow("validate"):
            with pytest.raises(AllocationError, match="interference"):
                build_interference(func)

    def test_corrupted_cpg_reachability(self, monkeypatch):
        func, machine = self._func()
        real = cpg_mod._wig_rows_matrix

        def corrupted(graph, wig):
            nodes, idx, adj, preg_deg = real(graph, wig)
            # Claim every node interferes with nothing: the replay then
            # wires the CPG edges differently.  (Zeroing a single row is
            # not enough — that node may happen to have no neighbors.)
            assert any(adj), "test function's WIG has no edges"
            return nodes, idx, [0] * len(adj), preg_deg

        monkeypatch.setattr(cpg_mod, "_wig_rows_matrix", corrupted)
        with dataflow("validate"):
            with pytest.raises(AllocationError, match="CPG"):
                allocate_function(func, machine,
                                  PreferenceDirectedAllocator())


@needs_numpy
class TestAllocationIdentity:
    def _fingerprint(self, func, machine, allocator_factory):
        alloc = allocator_factory()
        result = allocate_function(clone_function(func), machine, alloc)
        return (
            sorted((v.id, str(p)) for v, p in result.assignment.items()),
            (result.stats.moves_eliminated, result.stats.spill_loads,
             result.stats.spill_stores, result.stats.spilled_webs,
             result.stats.rounds),
            estimate_cycles(result.func, machine).total,
        )

    def test_single_round_identical_across_modes(self):
        profile = BenchmarkProfile(name="matrix", stmts=18, int_pool=6,
                                   float_pool=2, max_params=2,
                                   max_call_args=2)
        for seed in (0, 5):
            func, machine = _prepared(profile, seed, k=16)
            runs = {}
            for mode in ("int", "numpy", "validate"):
                with dataflow(mode):
                    runs[mode] = self._fingerprint(
                        func, machine, PreferenceDirectedAllocator
                    )
            assert runs["int"] == runs["numpy"] == runs["validate"]

    def test_spill_rounds_identical_across_modes(self):
        # k=4 forces multi-round allocations: the numpy backend's rows
        # travel through SpillDelta translation/patching and must stay
        # byte-identical to the int backend's.
        profile = BenchmarkProfile(name="matrix", stmts=24, int_pool=10,
                                   max_params=2, max_call_args=2)
        saw_spill = False
        for seed in (1, 4, 9):
            func, machine = _prepared(profile, seed, k=4)
            runs = {}
            for mode in ("int", "numpy", "validate"):
                with dataflow(mode):
                    try:
                        runs[mode] = self._fingerprint(
                            func, machine, ChaitinAllocator
                        )
                    except AllocationError as err:
                        if "pressure cannot be met" not in str(err):
                            raise
                        runs[mode] = ("pressure-error", str(err))
            assert runs["int"] == runs["numpy"] == runs["validate"]
            if isinstance(runs["int"], tuple) \
                    and runs["int"][0] != "pressure-error" \
                    and runs["int"][1][4] > 1:
                saw_spill = True
        assert saw_spill, "no workload actually spilled"


class TestNumpyFallback:
    def test_missing_numpy_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.setenv("REPRO_DATAFLOW", "numpy")
        monkeypatch.setattr(matrix, "_warned_missing", False)
        assert not matrix.have_numpy()
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert matrix.dataflow_mode() == "int"
        # Only the first resolution warns; the fallback itself sticks.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert matrix.dataflow_mode() == "int"
            assert matrix.active_backend() == "int"

    def test_no_numpy_still_allocates(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.delenv("REPRO_DATAFLOW", raising=False)
        profile = BenchmarkProfile(name="matrix", stmts=12, int_pool=6,
                                   max_params=2, max_call_args=2)
        func, machine = _prepared(profile, 2)
        result = allocate_function(clone_function(func), machine,
                                   PreferenceDirectedAllocator())
        assert result.assignment
