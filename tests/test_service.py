"""The service layer: protocol, cache, metrics, scheduler."""

import json

import pytest

from repro.errors import ServiceError
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import AllocationOptions
from repro.reporting import canonical_json
from repro.service.cache import ResultCache, request_fingerprint
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_ALLOCATORS,
    AllocationRequest,
    AllocationResponse,
    MachineSpec,
    machine_descriptor,
)
from repro.service.scheduler import (
    ALLOCATOR_FACTORIES,
    DEGRADATION_LADDER,
    Scheduler,
    degrade_for,
    execute_request,
    render_allocation,
)
from repro.target.presets import make_machine

IR = """func axpy(%p0, %p1) -> value {
entry:
  %acc = 0
  jump loop
loop:
  %x = load [%p0+0]
  %y = load [%p0+4]
  %s = add %x, %y
  %acc = add %acc, %s
  %c = cmplt %acc, %p1
  branch %c, done, loop
done:
  ret %acc
}
"""

#: Same function, different formatting/whitespace — must share a cache
#: entry with IR after parse->print normalization.
IR_REFORMATTED = IR.replace("  %acc = 0", "  %acc  =  0")


def make_request(**overrides) -> AllocationRequest:
    base = dict(id="t1", ir=IR, allocator="full",
                machine=MachineSpec(regs=8))
    base.update(overrides)
    return AllocationRequest(**base)


class TestProtocol:
    def test_request_wire_round_trip(self):
        req = make_request(deadline_s=2.5)
        again = AllocationRequest.from_wire(req.to_wire())
        assert again == req

    def test_request_json_is_deterministic(self):
        a = make_request().to_json()
        b = make_request().to_json()
        assert a == b
        assert json.loads(a)["type"] == "allocate"

    def test_response_wire_round_trip(self):
        resp = AllocationResponse(id="x", ok=True, allocator="full",
                                  effective_allocator="full",
                                  code="func f() {}",
                                  stats={"moves_before": 3},
                                  cycles={"total": 9.0}).seal()
        again = AllocationResponse.from_wire(json.loads(resp.to_json()))
        assert again.result_digest == resp.result_digest
        assert again.result_payload() == resp.result_payload()

    def test_digest_ignores_volatile_metadata(self):
        resp = AllocationResponse(
            id="a", code="c", stats={"s": 1}, cycles={"total": 1.0},
            effective_allocator="full").seal()
        other = AllocationResponse(
            id="b", cached=True, timings={"total_s": 1.0},
            code="c", stats={"s": 1}, cycles={"total": 1.0},
            effective_allocator="full").seal()
        assert resp.result_digest == other.result_digest

    def test_needs_exactly_one_source(self):
        with pytest.raises(ServiceError):
            AllocationRequest(id="x").validate()
        with pytest.raises(ServiceError):
            AllocationRequest(id="x", ir=IR, bench="jess").validate()

    def test_rejects_unknown_benchmark_and_allocator(self):
        with pytest.raises(ServiceError, match="benchmark"):
            AllocationRequest(id="x", bench="quake").validate()
        with pytest.raises(ServiceError, match="allocator"):
            AllocationRequest(id="x", ir=IR,
                              allocator="linear-scan").validate()

    def test_rejects_wrong_protocol_version(self):
        with pytest.raises(ServiceError, match="protocol"):
            AllocationRequest(id="x", ir=IR,
                              protocol=PROTOCOL_VERSION + 1).validate()

    def test_allocator_tables_agree(self):
        assert set(SERVICE_ALLOCATORS) == set(ALLOCATOR_FACTORIES)

    def test_machine_descriptor_is_value_based(self):
        a = machine_descriptor(make_machine(8))
        b = machine_descriptor(make_machine(8))
        c = machine_descriptor(make_machine(16))
        assert a == b != c


class TestFingerprint:
    def test_normalized_ir_shares_fingerprint(self):
        from repro.ir.parser import parse_module
        from repro.ir.printer import print_module

        machine = make_machine(8)
        norm_a = print_module(parse_module(IR))
        norm_b = print_module(parse_module(IR_REFORMATTED))
        assert norm_a == norm_b
        assert request_fingerprint(norm_a, machine, "full") == \
            request_fingerprint(norm_b, machine, "full")

    def test_fingerprint_splits_on_every_input(self):
        machine = make_machine(8)
        base = request_fingerprint(IR, machine, "full", verify=True)
        assert base != request_fingerprint(IR + " ", machine, "full")
        assert base != request_fingerprint(IR, make_machine(16), "full")
        assert base != request_fingerprint(IR, machine, "chaitin")
        assert base != request_fingerprint(IR, machine, "full",
                                           verify=False)


class TestResultCache:
    def response(self, tag="a"):
        return AllocationResponse(id=f"id-{tag}", ok=True, code=tag,
                                  effective_allocator="full",
                                  stats={}, cycles={}).seal()

    def test_hit_miss_counters_and_metadata_strip(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", self.response())
        hit = cache.get("k")
        assert hit is not None and hit.id == "" and not hit.cached
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self.response("a"))
        cache.put("b", self.response("b"))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", self.response("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.evictions == 1

    def test_disk_layer_survives_restart(self, tmp_path):
        first = ResultCache(max_entries=4, disk_dir=tmp_path)
        first.put("deadbeef", self.response("persisted"))
        second = ResultCache(max_entries=4, disk_dir=tmp_path)
        hit = second.get("deadbeef")
        assert hit is not None and hit.code == "persisted"
        assert second.disk_hits == 1
        # now promoted to memory: next hit does not touch disk
        second.get("deadbeef")
        assert second.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(max_entries=4, disk_dir=tmp_path)
        path = cache._disk_path("feedface")
        path.parent.mkdir(parents=True)
        path.write_text("not json{")
        assert cache.get("feedface") is None
        assert cache.disk_errors == 1

    def test_snapshot_schema(self):
        snap = ResultCache(max_entries=4).snapshot()
        for key in ("entries", "hits", "misses", "hit_ratio",
                    "evictions", "disk_dir"):
            assert key in snap


class TestMetrics:
    def test_histogram_percentiles_cover_samples(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 400):
            hist.observe(ms / 1000.0)
        assert hist.total == 4
        assert hist.percentile(50) <= hist.percentile(99)
        assert hist.percentile(99) >= 0.4 * 0.5  # within a bucket of max

    def test_snapshot_counts_and_ratio(self):
        metrics = ServiceMetrics()
        metrics.inc("cache_hits", 3)
        metrics.inc("cache_misses", 1)
        metrics.observe("total", 0.01)
        metrics.set_queue_depth(5)
        metrics.set_queue_depth(2)
        snap = metrics.snapshot()
        assert snap["cache_hit_ratio"] == 0.75
        assert snap["queue_depth"] == 2
        assert snap["queue_depth_max"] == 5
        assert snap["latency"]["total"]["count"] == 1

    def test_unknown_counter_refused(self):
        with pytest.raises(KeyError):
            ServiceMetrics().inc("nope")


class TestDegradationLadder:
    def test_every_allocator_reaches_chaitin(self):
        for name in SERVICE_ALLOCATORS:
            seen = [name]
            while seen[-1] != "chaitin":
                seen.append(degrade_for(seen[-1]))
                assert len(seen) <= len(DEGRADATION_LADDER) + 1
        assert degrade_for("chaitin") == "chaitin"


class TestScheduler:
    def run_request(self, scheduler, request):
        future = scheduler.submit(request)
        while not future.done():
            scheduler.run_once()
        return future.result()

    def test_result_byte_identical_to_direct_pipeline(self):
        from repro.ir.parser import parse_module

        request = make_request()
        machine = request.machine.build()
        prepared = prepare_module(parse_module(IR), machine)
        direct = allocate_module(prepared, machine,
                                 ALLOCATOR_FACTORIES["full"]())
        scheduler = Scheduler(cache=ResultCache())
        response = self.run_request(scheduler, request)
        assert response.ok and not response.degraded
        assert response.code == render_allocation(direct)
        assert response.code.encode() == \
            render_allocation(direct).encode()

    def test_cache_hit_on_reformatted_ir(self):
        scheduler = Scheduler(cache=ResultCache())
        first = self.run_request(scheduler, make_request(id="a"))
        second = self.run_request(
            scheduler, make_request(id="b", ir=IR_REFORMATTED))
        assert not first.cached and second.cached
        assert second.id == "b"
        assert second.result_digest == first.result_digest
        assert second.code == first.code
        assert scheduler.metrics.counters["cache_hits"] == 1

    def test_past_deadline_degrades_not_errors(self):
        scheduler = Scheduler(cache=ResultCache())
        response = self.run_request(
            scheduler, make_request(deadline_s=0.0))
        assert response.ok
        assert response.degraded
        assert response.effective_allocator == "chaitin"
        assert response.allocator == "full"
        assert "$r" in response.code  # still a real allocation
        assert scheduler.metrics.counters["deadline_misses"] == 1
        assert scheduler.metrics.counters["degraded_total"] == 1

    def test_degraded_response_not_cached(self):
        scheduler = Scheduler(cache=ResultCache())
        self.run_request(scheduler, make_request(deadline_s=0.0))
        assert len(scheduler.cache) == 0
        # a later request with time budget gets the real allocator
        fresh = self.run_request(scheduler, make_request(id="later"))
        assert not fresh.degraded and not fresh.cached
        assert fresh.effective_allocator == "full"

    def test_admission_control_rejects_when_full(self):
        scheduler = Scheduler(cache=None, max_queue=2)
        futures = [scheduler.submit(make_request(id=f"q{i}"))
                   for i in range(3)]
        rejected = futures[2].result(timeout=1)
        assert not rejected.ok
        assert "queue full" in rejected.error
        assert scheduler.metrics.counters["rejected_total"] == 1
        while any(not f.done() for f in futures):
            scheduler.run_once()
        assert all(f.result().ok for f in futures[:2])

    def test_overload_watermark_degrades_admitted_requests(self):
        scheduler = Scheduler(cache=None, max_queue=8,
                              overload_watermark=1)
        futures = [scheduler.submit(make_request(id=f"o{i}"))
                   for i in range(3)]
        while any(not f.done() for f in futures):
            scheduler.run_once()
        responses = [f.result() for f in futures]
        assert not responses[0].degraded
        assert all(r.degraded for r in responses[1:])
        assert all(r.ok for r in responses)

    def test_invalid_request_resolves_with_error(self):
        scheduler = Scheduler()
        response = scheduler.submit(
            AllocationRequest(id="bad")).result(timeout=1)
        assert not response.ok and "exactly one" in response.error

    def test_parse_error_resolves_with_error(self):
        scheduler = Scheduler()
        future = scheduler.submit(make_request(ir="func ("))
        scheduler.run_once()
        response = future.result(timeout=1)
        assert not response.ok and response.error

    def test_worker_thread_lifecycle(self):
        scheduler = Scheduler(cache=ResultCache())
        scheduler.start()
        try:
            response = scheduler.submit(make_request()).result(timeout=30)
            assert response.ok
        finally:
            scheduler.stop()

    def test_execute_request_bench_source(self):
        response = execute_request(AllocationRequest(
            id="b", bench="db", allocator="chaitin",
            machine=MachineSpec(regs=16)))
        assert response.ok and response.stats["moves_before"] > 0


class TestFingerprintHint:
    """The cluster router precomputes the digest; shards trust it to
    short-circuit straight to the cache, read-only."""

    def run_request(self, scheduler, request):
        future = scheduler.submit(request)
        while not future.done():
            scheduler.run_once()
        return future.result()

    def test_hint_hit_skips_the_parse_pass(self):
        scheduler = Scheduler(cache=ResultCache())
        first = self.run_request(scheduler, make_request(id="a"))
        hinted = make_request(id="b")
        hinted.fingerprint_hint = first.fingerprint
        second = self.run_request(scheduler, hinted)
        assert second.cached
        assert second.id == "b"
        assert second.result_digest == first.result_digest
        assert second.fingerprint == first.fingerprint
        # the whole point: the module was never re-normalized
        assert "parse_s" not in second.timings

    def test_wrong_hint_falls_through_to_the_full_path(self):
        scheduler = Scheduler(cache=ResultCache())
        request = make_request(id="a", fingerprint_hint="0" * 64)
        response = self.run_request(scheduler, request)
        assert response.ok and not response.cached
        assert response.fingerprint != request.fingerprint_hint
        # puts go under the *computed* key — a bad hint can misroute a
        # read, never poison the cache
        assert scheduler.cache.get(response.fingerprint) is not None
        assert scheduler.cache.get("0" * 64) is None

    def test_hint_round_trips_on_the_wire(self):
        request = make_request(id="a", fingerprint_hint="ab" * 32)
        wire = request.to_wire()
        assert wire["fingerprint_hint"] == "ab" * 32
        again = AllocationRequest.from_wire(wire)
        assert again.fingerprint_hint == "ab" * 32

    def test_garbled_hint_is_dropped_not_fatal(self):
        wire = make_request(id="a").to_wire()
        wire["fingerprint_hint"] = 1234
        assert AllocationRequest.from_wire(wire).fingerprint_hint is None


class TestPipelineSerialFallback:
    def test_unstartable_pool_falls_back_with_warning(self, monkeypatch):
        from repro.ir.parser import parse_module

        import repro.pipeline as pipeline

        machine = make_machine(8)
        two_funcs = IR + "\n" + IR.replace("axpy", "axpy2")
        prepared = prepare_module(parse_module(two_funcs), machine)
        want = allocate_module(prepared, machine,
                               ALLOCATOR_FACTORIES["full"]())

        def exploding_pool(*a, **kw):
            raise OSError("no fork for you")

        monkeypatch.setattr(pipeline, "get_default_pool", exploding_pool)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            got = allocate_module(prepared, machine,
                                  ALLOCATOR_FACTORIES["full"](),
                                  AllocationOptions(jobs=4))
        assert got.stats.moves_eliminated == want.stats.moves_eliminated
        assert got.cycles.total == want.cycles.total
        assert render_allocation(got) == render_allocation(want)

    def test_fallback_warning_names_the_reason(self, monkeypatch):
        """The serial-fallback warning carries the pool-start failure
        cause, not just the fact of the fallback."""
        from repro.ir.parser import parse_module

        import repro.pipeline as pipeline

        machine = make_machine(8)
        two_funcs = IR + "\n" + IR.replace("axpy", "axpy2")
        prepared = prepare_module(parse_module(two_funcs), machine)

        def exploding_pool(*a, **kw):
            raise OSError("fork refused by sandbox policy")

        monkeypatch.setattr(pipeline, "get_default_pool", exploding_pool)
        with pytest.warns(RuntimeWarning,
                          match="fork refused by sandbox policy"):
            allocate_module(prepared, machine,
                            ALLOCATOR_FACTORIES["full"](),
                            AllocationOptions(jobs=4))

    def test_startup_timeout_names_worker_fates(self):
        """A pool whose workers die before their first heartbeat says
        which workers died and with what exit codes."""
        from repro.exec.pool import WorkerPool, WorkerPoolUnavailable

        pool = WorkerPool(workers=2, task="repro.exec:does_not_exist",
                          start_timeout_s=5.0)
        try:
            with pytest.raises(WorkerPoolUnavailable) as excinfo:
                pool.ensure_started()
        finally:
            pool.shutdown()
        message = str(excinfo.value)
        assert "worker 0" in message and "worker 1" in message
        assert "exited with code" in message


class TestCanonicalJson:
    def test_key_order_and_compactness(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestSchemaRoundTrip:
    """The schema version vouches for the metrics contract.

    Every counter the service has grown (worker pool, degradation,
    cache layers) must appear in the emitted ``stats`` documents, and
    the counter set must match :data:`SERVICE_COUNTERS` exactly — so
    adding or renaming a counter without a coherent schema bump fails
    here, not in a downstream consumer.
    """

    def test_counters_match_the_schema_contract(self):
        from repro.service.schema import SERVICE_COUNTERS

        snapshot = ServiceMetrics().snapshot()
        assert set(snapshot["counters"]) == set(SERVICE_COUNTERS)

    def test_stats_documents_carry_every_counter(self):
        from repro.service.schema import (
            SCHEMA_VERSION,
            SERVICE_COUNTERS,
            final_stats_payload,
            stats_payload,
        )

        cache = ResultCache(max_entries=4)
        metrics = ServiceMetrics()
        scheduler = Scheduler(cache=cache, metrics=metrics)
        scheduler.start()
        try:
            assert scheduler.submit(make_request()).result(timeout=30).ok
            assert scheduler.submit(
                make_request(id="t2")).result(timeout=30).cached
        finally:
            scheduler.stop()

        stats = stats_payload(queue_depth=0, metrics=metrics.snapshot(),
                              cache=cache.snapshot())
        final = final_stats_payload(metrics.snapshot(), cache.snapshot())
        for doc in (stats, final):
            assert doc["schema"] == SCHEMA_VERSION
            counters = doc["metrics"]["counters"]
            for name in SERVICE_COUNTERS:
                assert name in counters, name
            # the sections v2 vouches for
            assert "worker_pool" in doc["metrics"]
            assert "alloc_phases" in doc["metrics"]
        assert stats["metrics"]["counters"]["cache_hits"] >= 1
        # wire round-trip: the document survives canonical JSON intact
        assert json.loads(canonical_json(stats)) == stats

    def test_schema_version_bumped_for_cluster(self):
        from repro.service.schema import SCHEMA_TYPES, SCHEMA_VERSION

        assert SCHEMA_VERSION >= 2
        assert "cluster_stats" in SCHEMA_TYPES
        # cache snapshots grew a backend section in v2
        assert "backend" in ResultCache().snapshot()
