"""Constant rematerialization of spilled live ranges."""

from repro.core import PreferenceDirectedAllocator
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function
from repro.ir.instructions import ConstInst, SpillLoad
from repro.ir.values import Const
from repro.pipeline import prepare_function
from repro.regalloc import (
    AllocationOptions,
    ChaitinAllocator,
    allocate_function,
    verify_allocation,
)
from repro.regalloc.spill import insert_spill_code, rematerializable_values
from repro.sim.interp import run_function
from repro.sim.ops import Memory
from repro.target.presets import make_machine


def high_pressure_consts():
    """More constant values live at once than a K=4 file can hold."""
    b = IRBuilder("p", n_params=1)
    consts = [b.const(i + 1) for i in range(8)]
    loads = [b.load(b.param(0), 4 * i) for i in range(4)]
    acc = b.move(b.param(0))
    for v in consts + loads:
        acc = b.add(acc, v)
    b.ret(acc)
    return b.finish()


class TestDetection:
    def test_single_constant_defs_detected(self):
        b = IRBuilder("f", n_params=0)
        c = b.const(42)
        b.ret(c)
        func = b.finish()
        assert rematerializable_values(func, {c}) == {c: 42}

    def test_computed_values_not_rematerializable(self):
        b = IRBuilder("f", n_params=1)
        v = b.add(b.param(0), Const(1))
        b.ret(v)
        func = b.finish()
        assert rematerializable_values(func, {v}) == {}

    def test_conflicting_constants_blocked(self):
        b = IRBuilder("f", n_params=1)
        v = b.const(1)
        cond = b.binop("cmplt", b.param(0), Const(3))
        b.branch(cond, "t", "m")
        b.block("t")
        b.const(2, dst=v)       # second def, different value
        b.jump("m")
        b.block("m")
        b.ret(v)
        func = b.finish()
        assert rematerializable_values(func, {v}) == {}

    def test_same_constant_twice_allowed(self):
        b = IRBuilder("f", n_params=1)
        v = b.const(7)
        cond = b.binop("cmplt", b.param(0), Const(3))
        b.branch(cond, "t", "m")
        b.block("t")
        b.const(7, dst=v)
        b.jump("m")
        b.block("m")
        b.ret(v)
        func = b.finish()
        assert rematerializable_values(func, {v}) == {v: 7}

    def test_params_never_rematerialized(self):
        b = IRBuilder("f", n_params=1)
        b.ret(b.param(0))
        func = b.finish()
        assert rematerializable_values(func, set(func.params)) == {}


class TestInsertion:
    def test_rematerialized_range_gets_no_slot(self):
        b = IRBuilder("f", n_params=0)
        c = b.const(9)
        d = b.add(c, Const(1))
        e = b.add(d, c)
        b.ret(e)
        func = b.finish()
        report = insert_spill_code(func, {c}, rematerialize=True)
        assert report.rematerialized == {c: 9}
        assert c not in report.slots
        assert not any(isinstance(i, SpillLoad)
                       for _, i in func.instructions())
        # the original def is gone; uses re-emit the constant
        consts = [i for _, i in func.instructions()
                  if isinstance(i, ConstInst) and i.value == 9]
        assert len(consts) == 2

    def test_semantics_preserved(self):
        func = high_pressure_consts()
        before = clone_function(func)
        targets = {v for v in func.vregs()
                   if v not in func.params}
        insert_spill_code(func, targets, rematerialize=True)
        ref = run_function(before, [64], memory=Memory())
        got = run_function(func, [64], memory=Memory())
        assert ref.value == got.value


class TestEndToEnd:
    def test_fewer_spill_instructions(self):
        machine = make_machine(4)
        base = prepare_function(high_pressure_consts(), machine)
        f1, f2 = clone_function(base), clone_function(base)
        plain = allocate_function(f1, machine, ChaitinAllocator())
        remat = allocate_function(f2, machine, ChaitinAllocator(),
                                  AllocationOptions(rematerialize=True))
        assert plain.stats.spill_instructions > 0
        assert remat.stats.spill_instructions < \
            plain.stats.spill_instructions
        verify_allocation(f2, machine)

    def test_correct_under_every_pressure(self):
        raw = high_pressure_consts()
        want = run_function(clone_function(raw), [128],
                            memory=Memory()).value
        for k in (4, 8, 16):
            machine = make_machine(k)
            func = prepare_function(clone_function(raw), machine)
            allocate_function(func, machine, PreferenceDirectedAllocator(),
                              AllocationOptions(rematerialize=True))
            verify_allocation(func, machine)
            got = run_function(func, [128], machine=machine,
                               memory=Memory()).value
            assert got == want
